//! Per-file analysis facts: the unit of caching and of the parse phase.
//!
//! `rto-analyze` is a two-phase analyzer. Phase 1 (parallel-friendly,
//! cacheable) turns each source file into a [`FileFacts`] value: the
//! functions it defines, the calls they make, the panic-family seeds
//! they contain, declared/inferred units of measure, raw lint findings,
//! and waiver comments. Phase 2 (cheap, global) resolves symbols,
//! builds the interprocedural call graph, and runs the A1/A2/A3
//! analyses over the facts of every file. Only phase 1 is cached, so a
//! warm run re-parses exactly the files whose content hash changed
//! while the global phase always sees the whole workspace.

use std::fmt;

/// A unit-of-measure tag for the A2 dataflow (paper quantities are
/// nanosecond counts, millisecond floats, and dimensionless densities).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Unit {
    /// Integer (or float) nanosecond count.
    Ns,
    /// Millisecond value (usually an `f64`).
    Ms,
    /// A density / utilization ratio (`(C1+C2)/(D−R)` and friends).
    Ratio,
    /// Known to carry no physical unit (bare literals, counters).
    Dimensionless,
    /// Nothing is known.
    #[default]
    Unknown,
}

impl Unit {
    /// Stable single-token spelling used by the cache serialization.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Ns => "ns",
            Unit::Ms => "ms",
            Unit::Ratio => "ratio",
            Unit::Dimensionless => "dimensionless",
            Unit::Unknown => "unknown",
        }
    }

    /// Inverse of [`Unit::as_str`]; unknown spellings decode to
    /// [`Unit::Unknown`].
    #[must_use]
    pub fn from_str_lossy(s: &str) -> Self {
        match s {
            "ns" => Unit::Ns,
            "ms" => Unit::Ms,
            "ratio" => Unit::Ratio,
            "dimensionless" => Unit::Dimensionless,
            _ => Unit::Unknown,
        }
    }

    /// True for units that participate in cross-unit conflict checks.
    #[must_use]
    pub fn is_concrete(self) -> bool {
        matches!(self, Unit::Ns | Unit::Ms | Unit::Ratio)
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a panic can be triggered at a seed site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedKind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    PanicMacro,
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(..)`.
    Expect,
    /// Bare slice/array indexing.
    Index,
}

impl SeedKind {
    /// Stable spelling for cache + messages.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SeedKind::PanicMacro => "panic-macro",
            SeedKind::Unwrap => "unwrap",
            SeedKind::Expect => "expect",
            SeedKind::Index => "index",
        }
    }

    /// Inverse of [`SeedKind::as_str`].
    #[must_use]
    pub fn from_str_lossy(s: &str) -> Self {
        match s {
            "unwrap" => SeedKind::Unwrap,
            "expect" => SeedKind::Expect,
            "index" => SeedKind::Index,
            _ => SeedKind::PanicMacro,
        }
    }
}

/// One potential panic site inside a function body.
#[derive(Debug, Clone)]
pub struct SeedFact {
    /// What kind of site this is.
    pub kind: SeedKind,
    /// 1-based source line.
    pub line: u32,
    /// True when a reviewed waiver covers this site (inline
    /// `// lint: allow(L3|A1): reason` or an `lint.allow.toml` entry):
    /// waived sites are treated as documented non-panicking contracts
    /// and do not seed A1 reachability.
    pub waived: bool,
}

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallFact {
    /// Callee name (method or function identifier).
    pub callee: String,
    /// `Type::` qualifier for path calls (`Duration::from_ns`), if any.
    pub qual: Option<String>,
    /// 1-based source line.
    pub line: u32,
    /// Inferred unit of each top-level argument.
    pub arg_units: Vec<Unit>,
    /// The call site is lexically inside the argument group of a
    /// `spawn(..)` call (i.e. inside a worker closure) — A5 uses this
    /// to seed the blocking-reachability check.
    pub in_spawn: bool,
    /// The call was written method-style (`recv.f(…)`). A8's step-bound
    /// graph keeps only *uniquely* resolving method calls, because the
    /// bare-name over-approximation would manufacture recursion cycles
    /// out of every same-named `push`/`pop` pair.
    pub method: bool,
    /// Method call whose immediate receiver is `self` (`self.f(…)`,
    /// not `self.field.f(…)`) — the only method shape A8 trusts for
    /// call-graph edges.
    pub recv_self: bool,
    /// Number of loops lexically enclosing the call site — A8 composes
    /// symbolic step bounds as `loop_depth + degree(callee)`.
    pub loop_depth: u32,
    /// The argument list carries a decreasing-argument pattern
    /// (`n - 1`, `n / 2`, `n >> 1`, `.saturating_sub(..)`, a shrunk
    /// slice) — A8's witness that a recursive call makes progress.
    pub decreasing: bool,
}

/// The hazard class of one A4 interval finding site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum A4Kind {
    /// `expr as u32/usize/…` where the value interval does not provably
    /// fit the target type (float→int truncation included).
    LossyCast,
    /// Integer `/` or `%` whose divisor interval is not provably
    /// nonzero.
    DivZero,
    /// Unsigned `a - b` where `a >= b` is not provable.
    SubUnderflow,
    /// `+`/`*` on *derived* intervals whose result exceeds the operand
    /// type range.
    Overflow,
}

impl A4Kind {
    /// Stable spelling for cache + messages.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            A4Kind::LossyCast => "lossy-cast",
            A4Kind::DivZero => "div-zero",
            A4Kind::SubUnderflow => "sub-underflow",
            A4Kind::Overflow => "overflow",
        }
    }

    /// Inverse of [`A4Kind::as_str`].
    #[must_use]
    pub fn from_str_lossy(s: &str) -> Self {
        match s {
            "div-zero" => A4Kind::DivZero,
            "sub-underflow" => A4Kind::SubUnderflow,
            "overflow" => A4Kind::Overflow,
            _ => A4Kind::LossyCast,
        }
    }
}

/// One unproven (or definitely violated) value-range site recorded by
/// the phase-1 interval walk. Phase 2 may discharge it through an
/// interprocedural return-interval summary ([`A4Site::dep`]), or turn
/// it into a diagnostic.
#[derive(Debug, Clone)]
pub struct A4Site {
    /// Hazard class.
    pub kind: A4Kind,
    /// 1-based source line.
    pub line: u32,
    /// Short source snippet of the offending expression.
    pub expr: String,
    /// Cast target type name (`u32`), or the operator (`/`, `-`, `+`).
    pub target: String,
    /// Rendered witness interval at the site (`[0, 2^53]`, `⊤`).
    pub witness: String,
    /// `true`: the derived interval *proves* the violation; `false`:
    /// merely not provably safe.
    pub definite: bool,
    /// When the value is exactly one call's result, the `(qual, name)`
    /// summary key phase 2 resolves against the symbol table.
    pub dep: Option<(Option<String>, String)>,
}

/// One atomic operation with an explicit memory ordering (A5).
#[derive(Debug, Clone)]
pub struct AtomicFact {
    /// Method name (`fetch_add`, `load`, `compare_exchange`, …).
    pub op: String,
    /// Ordering variant name (`Relaxed`, `SeqCst`, …). One fact per
    /// `Ordering::X` token in the call's arguments.
    pub ordering: String,
    /// 1-based source line.
    pub line: u32,
}

/// The class of a nondeterminism source (A6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NondetKind {
    /// Iteration over a `HashMap`/`HashSet` (key order is randomized
    /// per process by the SipHash seed).
    HashIter,
    /// `Instant::now()` / `SystemTime::now()` outside `obs::Stopwatch`.
    WallClock,
    /// `thread::current().id()` — scheduler-dependent identity.
    ThreadId,
    /// Ambient / unseeded RNG (`thread_rng`, `from_entropy`,
    /// `RandomState::new`).
    Rng,
    /// Environment reads (`env::var`, `env::args`, …).
    EnvRead,
    /// Filesystem reads (`fs::read_to_string`, `File::open`, …).
    FsRead,
}

impl NondetKind {
    /// Stable spelling for cache + messages.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            NondetKind::HashIter => "hash-iter",
            NondetKind::WallClock => "wall-clock",
            NondetKind::ThreadId => "thread-id",
            NondetKind::Rng => "rng",
            NondetKind::EnvRead => "env-read",
            NondetKind::FsRead => "fs-read",
        }
    }

    /// Inverse of [`NondetKind::as_str`].
    #[must_use]
    pub fn from_str_lossy(s: &str) -> Self {
        match s {
            "wall-clock" => NondetKind::WallClock,
            "thread-id" => NondetKind::ThreadId,
            "rng" => NondetKind::Rng,
            "env-read" => NondetKind::EnvRead,
            "fs-read" => NondetKind::FsRead,
            _ => NondetKind::HashIter,
        }
    }
}

/// One nondeterminism source site inside a function body (A6).
#[derive(Debug, Clone)]
pub struct NondetFact {
    /// Source class.
    pub kind: NondetKind,
    /// 1-based source line.
    pub line: u32,
    /// True when a reviewed sanction covers this site (inline
    /// `// analyze: allow(A6): reason` or an `lint.allow.toml` entry):
    /// sanctioned sources do not seed the taint propagation.
    pub waived: bool,
    /// Human label for witness chains
    /// (``"`HashMap` iteration (`seg_counts.values()`)"``).
    pub desc: String,
}

/// The class of a hot-path allocation site (A7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// Growth into a dynamic container (`.push`, `.extend`, `.append`,
    /// `.insert`) without `with_capacity`/`reserve` evidence in the
    /// same file.
    GrowPush,
    /// String construction (`format!`, `.to_string()`, `.to_owned()`,
    /// `String::from`).
    Str,
    /// Heap-box churn (`Box::new`, `Rc::new`, `Arc::new`).
    BoxRc,
    /// `.collect()` / `vec!` into a growable container.
    Collect,
}

impl AllocKind {
    /// Stable spelling for cache + messages.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AllocKind::GrowPush => "grow-push",
            AllocKind::Str => "string",
            AllocKind::BoxRc => "box-rc",
            AllocKind::Collect => "collect",
        }
    }

    /// Inverse of [`AllocKind::as_str`].
    #[must_use]
    pub fn from_str_lossy(s: &str) -> Self {
        match s {
            "string" => AllocKind::Str,
            "box-rc" => AllocKind::BoxRc,
            "collect" => AllocKind::Collect,
            _ => AllocKind::GrowPush,
        }
    }
}

/// One allocating construct inside a function body (A7).
#[derive(Debug, Clone)]
pub struct AllocFact {
    /// Allocation class.
    pub kind: AllocKind,
    /// 1-based source line.
    pub line: u32,
    /// True when a reviewed sanction covers this site (inline
    /// `// analyze: allow(A7): reason` or an `lint.allow.toml` entry).
    pub waived: bool,
    /// Human label (``"`format!`"``, ``"`buf.push(..)`"``).
    pub desc: String,
}

/// How A8 classified one loop (the termination lattice; see
/// DESIGN.md §16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// `for` over a visibly finite iterable (range, container, chained
    /// iterator) — trip count bounded by the iterable's extent.
    ForBounded,
    /// `for` over an endless-iterator idiom: an open range (`lo..`),
    /// `.cycle()`, or `iter::repeat(..)` with no `.take(..)` in sight.
    ForEndless,
    /// `while`/`while let` with a monotone progress witness: a guard
    /// variable strictly advanced in the body, or a scrutinee that
    /// drains a finite source the body does not refill.
    WhileProgress,
    /// `loop`/`while` whose body reaches an unconditional top-level
    /// `break`/`return` — every iteration that completes exits.
    LoopBreaks,
    /// No witness found: the loop cannot be shown to terminate.
    Unbounded,
}

impl LoopKind {
    /// Stable spelling for cache + messages.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LoopKind::ForBounded => "for-bounded",
            LoopKind::ForEndless => "for-endless",
            LoopKind::WhileProgress => "while-progress",
            LoopKind::LoopBreaks => "loop-breaks",
            LoopKind::Unbounded => "unbounded",
        }
    }

    /// Inverse of [`LoopKind::as_str`].
    #[must_use]
    pub fn from_str_lossy(s: &str) -> Self {
        match s {
            "for-bounded" => LoopKind::ForBounded,
            "for-endless" => LoopKind::ForEndless,
            "while-progress" => LoopKind::WhileProgress,
            "loop-breaks" => LoopKind::LoopBreaks,
            _ => LoopKind::Unbounded,
        }
    }

    /// A bounded classification: contributes its nesting depth to the
    /// function's step-bound degree instead of forcing `⊤`.
    #[must_use]
    pub fn is_bounded(self) -> bool {
        !matches!(self, LoopKind::ForEndless | LoopKind::Unbounded)
    }
}

/// One loop inside a function body (A8).
#[derive(Debug, Clone)]
pub struct LoopFact {
    /// Termination classification.
    pub kind: LoopKind,
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// Nesting depth inside the function, 1-based (a loop directly in
    /// the body is depth 1; a loop inside it is depth 2, …).
    pub depth: u32,
    /// Human label (``"`loop`"``, ``"`while hull.len() >= 2`"``).
    pub desc: String,
    /// The progress witness, empty when none was found
    /// (``"guard `i` advanced by `+=`"``, ``"drains `heap.pop()`"``).
    pub witness: String,
    /// True when a reviewed sanction covers this loop (inline
    /// `// analyze: allow(A8): reason` or an `lint.allow.toml` entry):
    /// sanctioned loops count as bounded.
    pub waived: bool,
}

/// One potentially blocking call site (A5).
#[derive(Debug, Clone)]
pub struct BlockFact {
    /// Human label (``"`Mutex::lock`"``, ``"file I/O (`fs::write`)"``).
    pub desc: String,
    /// 1-based source line.
    pub line: u32,
    /// Lexically inside a `spawn(..)` argument group.
    pub in_spawn: bool,
}

/// Facts about one function (or method) definition.
#[derive(Debug, Clone, Default)]
pub struct FnFact {
    /// Function name.
    pub name: String,
    /// Surrounding `impl`/`trait` type name, if any.
    pub qual: Option<String>,
    /// Trait being implemented (`impl Trait for Type`), if any.
    pub trait_name: Option<String>,
    /// Whether this is (conservatively) part of the crate's public API:
    /// `pub fn`, or any fn in a trait / trait impl.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameter names with their inferred units (`self` excluded).
    pub params: Vec<(String, Unit)>,
    /// Primitive type annotation of each parameter, aligned with
    /// `params` (`""` when the type is not a bare primitive).
    pub param_tys: Vec<String>,
    /// Unit implied by the function's name (`..._ns`, `ratio`, …).
    pub ret_unit: Unit,
    /// Primitive return type (`"u64"`, `"f64"`, `""` otherwise).
    pub ret_ty: String,
    /// Encoded abstract return interval ([`crate::domains::Abs`]
    /// encoding) — the interprocedural A4 summary for this function.
    pub ret_abs: String,
    /// Token span of the body in the test-stripped token stream:
    /// `(first, one-past-last)` — lets the phase-2 fixpoint engine
    /// re-walk the body with callee summaries without re-parsing.
    pub body_span: (usize, usize),
    /// Call sites in the body.
    pub calls: Vec<CallFact>,
    /// Panic-family seeds in the body.
    pub seeds: Vec<SeedFact>,
    /// Lock acquisitions (`recv.lock()` and RwLock read/write), as
    /// `(receiver name, line)` in source order — A5's lock-order input.
    pub lock_acqs: Vec<(String, u32)>,
    /// Potentially blocking call sites in the body.
    pub blocking: Vec<BlockFact>,
    /// Annotated as a hot region (`// analyze: hot-path` on the line
    /// before the `fn`) — the A7 reachability roots.
    pub hot: bool,
    /// Nondeterminism sources in the body (A6).
    pub nondet: Vec<NondetFact>,
    /// Allocating constructs in the body (A7).
    pub allocs: Vec<AllocFact>,
    /// Loops in the body with their termination classification (A8).
    pub loops: Vec<LoopFact>,
}

impl FnFact {
    /// `Type::name` or plain `name`.
    #[must_use]
    pub fn qualified(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A rule finding re-recorded as plain data (path is implied by the
/// owning [`FileFacts`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    /// Rule id (`"L1"`…`"L6"`, `"A1"`…`"A3"`).
    pub rule: String,
    /// 1-based source line.
    pub line: u32,
    /// `"deny"` or `"warn"`.
    pub severity: String,
    /// Human-readable message.
    pub message: String,
}

/// The kind of a reviewed waiver comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaiverKind {
    /// `// lint: allow(Lx|Ax): reason`, with the rule id.
    Allow(String),
    /// `// lint: relaxed-ok: reason` (L6 justification).
    RelaxedOk,
}

/// One inline waiver comment.
#[derive(Debug, Clone)]
pub struct WaiverComment {
    /// What the comment waives.
    pub kind: WaiverKind,
    /// 1-based line the comment starts on (it covers findings on this
    /// line and the next).
    pub line: u32,
}

/// Everything the global phase needs to know about one source file.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// Crate directory under `crates/` (`core`, `mckp`, …); `None` for
    /// the facade package's `src/`.
    pub crate_dir: Option<String>,
    /// Function definitions (test regions stripped).
    pub fns: Vec<FnFact>,
    /// Raw lint findings on production (test-stripped) tokens, with no
    /// waivers applied.
    pub lint_prod: Vec<RawFinding>,
    /// Raw lint findings on the full token stream (tests included);
    /// used only to justify inline waivers that live in test code.
    pub lint_all: Vec<RawFinding>,
    /// Intra-function A2 findings.
    pub a2_local: Vec<RawFinding>,
    /// Inline waiver comments found anywhere in the file.
    pub waivers: Vec<WaiverComment>,
    /// Lines containing an `Ordering::Relaxed` token (full stream).
    pub relaxed_lines: Vec<u32>,
    /// A4 interval sites recorded by the phase-1 walk (pre-waiver).
    pub a4: Vec<A4Site>,
    /// Atomic operations with explicit orderings (test-stripped).
    pub atomics: Vec<AtomicFact>,
    /// Module-level integer constants (`const NAME: TY = <literal>;`),
    /// as `(name, primitive type, value)` — the interval walker reads
    /// them so masks and shifts by named constants stay bounded.
    pub consts: Vec<(String, String, i128)>,
    /// The file contains a `with_capacity`/`reserve` token anywhere —
    /// file-granular evidence that its `GrowPush` sites amortize into
    /// a pre-sized buffer (a deliberate, documented over-approximation).
    pub capacity_evidence: bool,
}

impl FileFacts {
    /// The crate name used for call-graph scoping: the crate dir, or
    /// `"rto"` for the facade package at the workspace root.
    #[must_use]
    pub fn crate_key(&self) -> &str {
        self.crate_dir.as_deref().unwrap_or("rto")
    }
}
