//! A7 — hot-path allocation analysis.
//!
//! The static twin of the `obs_bench` counting-allocator gate: hot
//! regions are marked in source with an attribute comment,
//!
//! ```text
//! // analyze: hot-path
//! pub fn push(&mut self, ev: Event) { … }
//! ```
//!
//! on the line immediately above (or on) the `fn` line. The pass takes
//! the forward call-graph closure of every annotated function and flags
//! reachable allocating constructs recorded in phase 1
//! ([`AllocFact`]): container growth without `with_capacity`/`reserve`
//! evidence in the defining file, `String`/`format!` construction,
//! `Box`/`Rc`/`Arc` churn, and `.collect()`/`vec!` into growable
//! containers.
//!
//! Severity: `deny` inside a directly-annotated function (the author
//! declared it hot; an allocation there is a contract violation),
//! `warn` in functions that are merely reachable from a hot root — the
//! call may sit on a cold branch the token scanner cannot see. Every
//! reachable finding carries the annotated root and discovery chain so
//! the provenance is auditable.
//!
//! Sanctions reuse the shared waiver machinery: an inline
//! `// analyze: allow(A7): reason` on the allocation line (or above),
//! or a directory-prefix `lint.allow.toml` entry — reviewed claims that
//! the allocation is amortized, on the enabled-only path, or setup
//! rather than steady state.
//!
//! Soundness caveats (documented in DESIGN.md §14): capacity evidence
//! is file-granular, name resolution over-approximates across
//! same-named methods, and a hot annotation on a trait method does not
//! propagate to unannotated impls it dispatches to.
//!
//! [`AllocFact`]: crate::facts::AllocFact

use crate::facts::{AllocKind, FileFacts, FnFact};
use crate::graph::{Gid, Graph};
use crate::{allowlist_waived, inline_waived, Diagnostic};
use rto_lint::allow::AllowEntry;
use std::collections::{HashMap, VecDeque};

/// Run the A7 analysis over every file's facts.
#[must_use]
pub fn check(
    files: &[FileFacts],
    allowlist: &[AllowEntry],
    deps: &HashMap<String, Vec<String>>,
) -> Vec<Diagnostic> {
    let g = Graph::build(files, allowlist, deps);

    // Multi-source forward BFS from the annotated roots, in
    // deterministic `fns` order, recording each function's discovery
    // parent so findings can cite their hot provenance chain.
    let mut parent: HashMap<Gid, Gid> = HashMap::new();
    let mut reached: HashMap<Gid, Gid> = HashMap::new(); // gid → root
    let mut queue: VecDeque<Gid> = VecDeque::new();
    for &gid in &g.fns {
        let (fi, ni) = gid;
        if files
            .get(fi)
            .and_then(|ff| ff.fns.get(ni))
            .is_some_and(|f| f.hot)
        {
            reached.insert(gid, gid);
            queue.push_back(gid);
        }
    }
    while let Some(gid) = queue.pop_front() {
        let root = reached[&gid];
        let Some(targets) = g.edges.get(&gid) else {
            continue;
        };
        for &t in targets {
            if reached.contains_key(&t) {
                continue;
            }
            reached.insert(t, root);
            parent.insert(t, gid);
            queue.push_back(t);
        }
    }

    let name_of = |gid: Gid| -> Option<String> {
        files
            .get(gid.0)
            .and_then(|ff| ff.fns.get(gid.1))
            .map(FnFact::qualified)
    };
    // Hot-provenance chain root → … → gid, as qualified names.
    let chain = |mut gid: Gid| -> Vec<String> {
        let mut rev = vec![gid];
        while let Some(&p) = parent.get(&gid) {
            rev.push(p);
            gid = p;
        }
        rev.reverse();
        rev.iter().filter_map(|&x| name_of(x)).collect()
    };

    let mut out = Vec::new();
    for &gid in &g.fns {
        if !reached.contains_key(&gid) {
            continue;
        }
        let (fi, ni) = gid;
        let Some(ff) = files.get(fi) else { continue };
        let Some(f) = ff.fns.get(ni) else { continue };
        for a in &f.allocs {
            if a.waived || inline_waived(ff, "A7", a.line) || allowlist_waived(allowlist, ff, "A7")
            {
                continue;
            }
            // File-granular capacity evidence discharges growth sites:
            // the file pre-sizes *some* buffer, which we accept as
            // amortization evidence (documented over-approximation).
            if a.kind == AllocKind::GrowPush && ff.capacity_evidence {
                continue;
            }
            let (severity, provenance) = if f.hot {
                ("deny", format!("hot `{}`", f.qualified()))
            } else {
                (
                    "warn",
                    format!("reachable from hot: {}", chain(gid).join(" \u{2192} ")),
                )
            };
            let advice = match a.kind {
                AllocKind::GrowPush => "pre-size with `with_capacity`/`reserve` or reuse a buffer",
                AllocKind::Str => "format off the hot path or write into a reused buffer",
                AllocKind::BoxRc => "hoist the box out of the hot region",
                AllocKind::Collect => "collect outside the hot region or index in place",
            };
            out.push(Diagnostic {
                path: ff.rel_path.clone(),
                line: a.line,
                rule: "A7".into(),
                severity: severity.into(),
                message: format!(
                    "hot-path allocation: {} in `{}` ({provenance}) — {advice}, \
                     or sanction with `// analyze: allow(A7): reason`",
                    a.desc,
                    f.qualified()
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ffs: Vec<_> = files.iter().map(|(p, s)| parse_file(p, s)).collect();
        check(&ffs, &[], &HashMap::new())
    }

    #[test]
    fn direct_allocation_in_hot_fn_is_denied() {
        let src = "// analyze: hot-path\n\
                   pub fn emit(&self, v: u64) {\n    let s = format!(\"{v}\");\n}\n";
        let d = run(&[("crates/obs/src/lib.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].severity, "deny");
        assert!(d[0].message.contains("`format!`"), "{d:?}");
        assert!(d[0].message.contains("hot `emit`"), "{d:?}");
    }

    #[test]
    fn reachable_allocation_warns_with_provenance_chain() {
        let src = "// analyze: hot-path\n\
                   pub fn pop(&mut self) -> u64 {\n    self.drain_one()\n}\n\
                   fn drain_one(&mut self) -> u64 {\n    let v: Vec<u64> = it.collect();\n    0\n}\n";
        let d = run(&[("crates/sim/src/event.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].severity, "warn");
        assert!(d[0].message.contains("`.collect()`"), "{d:?}");
        assert!(
            d[0].message
                .contains("reachable from hot: pop \u{2192} drain_one"),
            "{d:?}"
        );
    }

    #[test]
    fn unannotated_functions_are_not_scanned() {
        let src = "pub fn setup() {\n    let s = format!(\"x\");\n    let v = vec![1, 2];\n}\n";
        assert!(run(&[("crates/sim/src/event.rs", src)]).is_empty());
    }

    #[test]
    fn capacity_evidence_discharges_growth_sites() {
        let evidenced = "// analyze: hot-path\n\
                         pub fn push(&mut self, v: u64) {\n    self.heap.push(v);\n}\n\
                         pub fn new(cap: usize) -> Self {\n    Self { heap: Vec::with_capacity(cap) }\n}\n";
        assert!(run(&[("crates/sim/src/event.rs", evidenced)]).is_empty());
        let bare = "// analyze: hot-path\n\
                    pub fn push(&mut self, v: u64) {\n    self.heap.push(v);\n}\n";
        let d = run(&[("crates/sim/src/event.rs", bare)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`heap.push(..)`"), "{d:?}");
    }

    #[test]
    fn sanction_comment_silences_the_site() {
        let src = "// analyze: hot-path\n\
                   pub fn solve(&self) {\n    \
                   // analyze: allow(A7): row buffers are set up once per solve, not per item\n    \
                   let dp = vec![0.0; 8];\n}\n";
        assert!(run(&[("crates/mckp/src/dp.rs", src)]).is_empty());
    }

    #[test]
    fn string_and_box_churn_are_flagged() {
        let src = "// analyze: hot-path\n\
                   pub fn hot(&self, x: u64) {\n    let a = x.to_string();\n    let b = Box::new(x);\n}\n";
        let d = run(&[("crates/core/src/x.rs", src)]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(
            d.iter().any(|x| x.message.contains("`.to_string()`")),
            "{d:?}"
        );
        assert!(d.iter().any(|x| x.message.contains("`Box::new`")), "{d:?}");
    }
}
