//! A8: termination & loop-bound audit — statically prove the hot
//! paths can't stall.
//!
//! Three findings, built on the loop shapes phase 1 extracts
//! ([`crate::facts::LoopFact`]):
//!
//! 1. **In-scope unbounded loops.** Every `for` over an endless
//!    iterator idiom and every `while`/`loop` without a monotone
//!    progress witness (strictly advanced guard, drained source,
//!    unconditional top-level exit) is denied in the engine/solver
//!    core files ([`A8_DENY_FILES`]) and warned elsewhere in the
//!    product crates ([`A8_WARN_CRATES`]).
//! 2. **Unwitnessed recursion.** Cyclic SCCs of the call graph are
//!    condensed ([`crate::interval::tarjan_sccs`]); every in-scope
//!    member must carry a decreasing-argument witness on its recursive
//!    calls or an `// analyze: allow(A8): reason` sanction.
//! 3. **Hot-path `⊤` reachability.** Per-function symbolic step
//!    bounds (`O(1)`, `O(n)`, `O(n·m)`, …, `⊤`) are composed
//!    bottom-up over the SCC condensation; any `// analyze: hot-path`
//!    root whose call closure contains a `⊤`-bound function is denied
//!    with the shortest witness chain, like A6/A7.
//!
//! Unlike A1's deliberately over-approximate resolution
//! ([`crate::graph`]), the A8 call graph keeps only **uniquely
//! resolving** calls and *keeps self-edges*: a bare method name that
//! matches several workspace functions (`.push(…)`) would otherwise
//! manufacture recursion cycles between unrelated queue
//! implementations. Method-style calls are trusted only when the
//! immediate receiver is `self` (`self.dfs(…)`) — `self.inner.push(…)`
//! inside a workspace `push` is `Vec::push`, not recursion — and even
//! then never for names of well-known `std`/derive trait methods
//! ([`STD_METHODS`]): a hand-written `Ord::cmp` calling field `cmp`s
//! must not become a cycle. The cost is under-approximation on
//! method-call edges, recorded as a soundness caveat in DESIGN.md §16.

use crate::facts::{FileFacts, LoopKind};
use crate::interval::tarjan_sccs;
use crate::{allowlist_waived, inline_waived, Diagnostic};
use rto_lint::allow::AllowEntry;
use std::collections::{HashMap, HashSet, VecDeque};

/// Workspace-relative files whose A8 loop/recursion findings are
/// `deny`: the audit scope from the issue — `sim::{event,system}`,
/// `mckp::{dp,fptas,branch_bound}`, `core::{odm,qpa,analysis}`, and
/// `exp::pool` (the QPA backward scan lives in `core`, not `mckp`).
const A8_DENY_FILES: &[&str] = &[
    "crates/sim/src/event.rs",
    "crates/sim/src/system.rs",
    "crates/mckp/src/dp.rs",
    "crates/mckp/src/fptas.rs",
    "crates/mckp/src/branch_bound.rs",
    "crates/core/src/odm.rs",
    "crates/core/src/qpa.rs",
    "crates/core/src/analysis.rs",
    "crates/exp/src/pool.rs",
];

/// Crates whose remaining files get `warn`-severity findings.
const A8_WARN_CRATES: &[&str] = &["core", "mckp", "sim", "exp"];

/// Method names that overwhelmingly belong to `std`
/// containers/iterators/sync primitives or derivable traits: a
/// method-style call to one of these never contributes an A8 edge,
/// even on a `self` receiver, even when a workspace function of the
/// same name happens to resolve uniquely.
const STD_METHODS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "len",
    "is_empty",
    "clear",
    "next",
    "next_back",
    "peek",
    "drain",
    "append",
    "extend",
    "take",
    "last",
    "first",
    "contains",
    "push_back",
    "push_front",
    "pop_front",
    "pop_back",
    "retain",
    "truncate",
    "reserve",
    "sort",
    "sort_unstable",
    "swap",
    "entry",
    "iter",
    "clone",
    "min",
    "max",
    "abs",
    "load",
    "store",
    "send",
    "recv",
    "lock",
    "read",
    "write",
    "join",
    "cmp",
    "partial_cmp",
    "eq",
    "ne",
    "hash",
    "fmt",
    "default",
    "to_string",
];

/// Same well-known-`std` qualifier guard as [`crate::graph`]: a
/// qualified call on one of these types never falls back to bare-name
/// matching.
const STD_QUALS: &[&str] = &[
    "Vec",
    "String",
    "Box",
    "Rc",
    "Arc",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "VecDeque",
    "BinaryHeap",
    "Mutex",
    "RwLock",
    "Condvar",
    "PathBuf",
    "Path",
    "OsString",
    "CString",
    "Cell",
    "RefCell",
    "Cow",
    "Option",
    "Result",
    "Ordering",
    "Reverse",
    "PoisonError",
    "NonZeroUsize",
    "AtomicBool",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
];

/// Global function id, `(file index, fn index)`.
type Gid = (usize, usize);

/// One kept call edge of the unique-resolution graph.
#[derive(Clone, Copy)]
struct Edge {
    target: Gid,
    /// Loops lexically enclosing the call site in the caller.
    loop_depth: u32,
    /// Arguments carry a decreasing pattern (`x - 1`, `n / 2`,
    /// `saturating_sub`, subslice, …).
    decreasing: bool,
}

/// A function's symbolic step bound: `Some(degree)` is polynomial of
/// that degree (0 ⇒ `O(1)`, 1 ⇒ `O(n)`, …); `None` is `⊤`.
type Bound = Option<u32>;

/// Render a step bound for messages.
fn render_bound(b: Bound) -> String {
    match b {
        None => "⊤".into(),
        Some(0) => "O(1)".into(),
        Some(1) => "O(n)".into(),
        Some(2) => "O(n·m)".into(),
        Some(k) => format!("O(n^{k})"),
    }
}

/// Run the A8 termination audit over every file's facts.
#[must_use]
pub fn check(
    files: &[FileFacts],
    allowlist: &[AllowEntry],
    deps: &HashMap<String, Vec<String>>,
) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = Vec::new();

    // ---- the unique-resolution call graph (self-edges kept) ----
    let mut by_name: HashMap<(&str, &str), Vec<Gid>> = HashMap::new();
    let mut by_qual: HashMap<(&str, &str, &str), Vec<Gid>> = HashMap::new();
    let mut fns: Vec<Gid> = Vec::new();
    for (fi, ff) in files.iter().enumerate() {
        let ck = ff.crate_key();
        for (ni, f) in ff.fns.iter().enumerate() {
            let gid = (fi, ni);
            fns.push(gid);
            by_name.entry((ck, &f.name)).or_default().push(gid);
            if let Some(q) = &f.qual {
                by_qual.entry((ck, q, &f.name)).or_default().push(gid);
            }
            if let Some(t) = &f.trait_name {
                by_qual.entry((ck, t, &f.name)).or_default().push(gid);
            }
        }
    }
    let idx_of: HashMap<Gid, usize> = fns.iter().enumerate().map(|(i, &g)| (g, i)).collect();

    let empty: Vec<String> = Vec::new();
    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
    for (fi, ff) in files.iter().enumerate() {
        let ck = ff.crate_key();
        let dep_dirs = deps.get(ck).unwrap_or(&empty);
        let scope: Vec<&str> = std::iter::once(ck)
            .chain(dep_dirs.iter().map(String::as_str))
            .collect();
        for (ni, f) in ff.fns.iter().enumerate() {
            let gid = (fi, ni);
            for call in &f.calls {
                if call.method && (!call.recv_self || STD_METHODS.contains(&call.callee.as_str())) {
                    continue;
                }
                let mut resolved: Vec<Gid> = Vec::new();
                if let Some(q) = &call.qual {
                    for ck2 in &scope {
                        if let Some(v) = by_qual.get(&(*ck2, q.as_str(), call.callee.as_str())) {
                            resolved.extend_from_slice(v);
                        }
                    }
                }
                let std_qual = call.qual.as_deref().is_some_and(|q| STD_QUALS.contains(&q));
                if resolved.is_empty() && !std_qual {
                    for ck2 in &scope {
                        if let Some(v) = by_name.get(&(*ck2, call.callee.as_str())) {
                            resolved.extend_from_slice(v);
                        }
                    }
                }
                resolved.sort_unstable();
                resolved.dedup();
                // Only uniquely-resolving calls contribute edges: an
                // ambiguous name proves nothing about *which* function
                // runs, and a wrong guess fabricates recursion.
                if resolved.len() == 1 {
                    edges[idx_of[&gid]].push(Edge {
                        target: resolved[0],
                        loop_depth: call.loop_depth,
                        decreasing: call.decreasing,
                    });
                }
            }
        }
    }

    // ---- SCC condensation (callee-first order) ----
    let callees: Vec<Vec<usize>> = edges
        .iter()
        .map(|es| {
            let mut v: Vec<usize> = es.iter().map(|e| idx_of[&e.target]).collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let sccs = tarjan_sccs(&callees);
    let mut scc_of: Vec<usize> = vec![0; fns.len()];
    for (si, scc) in sccs.iter().enumerate() {
        for &m in scc {
            scc_of[m] = si;
        }
    }
    let cyclic: Vec<bool> = sccs
        .iter()
        .map(|scc| scc.len() > 1 || callees[scc[0]].contains(&scc[0]))
        .collect();

    let severity_of = |ff: &FileFacts| -> Option<&'static str> {
        if A8_DENY_FILES.contains(&ff.rel_path.as_str()) {
            Some("deny")
        } else if A8_WARN_CRATES.contains(&ff.crate_key()) {
            Some("warn")
        } else {
            None
        }
    };

    // ---- finding 1: in-scope loops without a progress witness ----
    for ff in files {
        let Some(sev) = severity_of(ff) else { continue };
        for f in &ff.fns {
            for l in &f.loops {
                if l.kind.is_bounded() || l.waived {
                    continue;
                }
                if inline_waived(ff, "A8", l.line) || allowlist_waived(allowlist, ff, "A8") {
                    continue;
                }
                let what = match l.kind {
                    LoopKind::ForEndless => "iterates an endless source",
                    _ => "has no progress witness",
                };
                out.push(Diagnostic {
                    path: ff.rel_path.clone(),
                    line: l.line,
                    rule: "A8".into(),
                    severity: sev.into(),
                    message: format!(
                        "{} in `{}` {what} — no monotone guard, drained source, or \
                         unconditional top-level exit found; restructure or sanction with \
                         `// analyze: allow(A8): reason`",
                        l.desc, f.name
                    ),
                });
            }
        }
    }

    // ---- finding 2: cyclic SCC members without a decreasing witness ----
    // A member is witnessed when every one of its recursive (intra-SCC)
    // calls passes a decreasing argument; a sanction on the `fn` line
    // accepts the cycle as reviewed.
    let mut member_ok: Vec<bool> = vec![true; fns.len()];
    for (i, &gid) in fns.iter().enumerate() {
        let si = scc_of[i];
        if !cyclic[si] {
            continue;
        }
        let intra: Vec<&Edge> = edges[i]
            .iter()
            .filter(|e| scc_of[idx_of[&e.target]] == si)
            .collect();
        let witnessed = !intra.is_empty() && intra.iter().all(|e| e.decreasing);
        let ff = &files[gid.0];
        let f = &ff.fns[gid.1];
        let sanctioned = inline_waived(ff, "A8", f.line) || allowlist_waived(allowlist, ff, "A8");
        member_ok[i] = witnessed || sanctioned;
        if member_ok[i] {
            continue;
        }
        if let Some(sev) = severity_of(ff) {
            let mut peers: Vec<&str> = sccs[si]
                .iter()
                .filter(|&&m| m != i)
                .map(|&m| files[fns[m].0].fns[fns[m].1].name.as_str())
                .collect();
            peers.sort_unstable();
            peers.dedup();
            let cycle = if peers.is_empty() {
                "calls itself".to_string()
            } else {
                format!("is mutually recursive with `{}`", peers.join("`, `"))
            };
            out.push(Diagnostic {
                path: ff.rel_path.clone(),
                line: f.line,
                rule: "A8".into(),
                severity: sev.into(),
                message: format!(
                    "`{}` {cycle} without a decreasing-argument witness — make every \
                     recursive call strictly shrink an argument or sanction with \
                     `// analyze: allow(A8): reason`",
                    f.name
                ),
            });
        }
    }

    // ---- per-function step bounds, bottom-up over the condensation ----
    // `local[i]` is the function's own contribution: `None` (⊤) when it
    // owns an unsanctioned endless/unbounded loop, otherwise its
    // deepest loop nest. `⊤` causes are remembered for the chains.
    let mut local: Vec<Bound> = Vec::with_capacity(fns.len());
    let mut top_cause: Vec<Option<(String, u32)>> = Vec::with_capacity(fns.len());
    for &(fi, ni) in &fns {
        let ff = &files[fi];
        let f = &ff.fns[ni];
        let file_waived = allowlist_waived(allowlist, ff, "A8");
        let mut depth_max = 0u32;
        let mut cause: Option<(String, u32)> = None;
        for l in &f.loops {
            if !l.kind.is_bounded() && !l.waived && !file_waived {
                cause.get_or_insert_with(|| (l.desc.clone(), l.line));
            }
            depth_max = depth_max.max(l.depth);
        }
        local.push(if cause.is_some() {
            None
        } else {
            Some(depth_max)
        });
        top_cause.push(cause);
    }
    let mut bound: Vec<Bound> = vec![Some(0); fns.len()];
    for (si, scc) in sccs.iter().enumerate() {
        let scc_set: HashSet<usize> = scc.iter().copied().collect();
        // The non-recursive part: own loops plus cross-SCC calls (whose
        // bounds are final — `tarjan_sccs` emits callees first).
        let mut base: Bound = Some(0);
        let mut all_ok = true;
        for &m in scc {
            base = join_max(base, local[m]);
            all_ok &= member_ok[m];
            for e in &edges[m] {
                let ti = idx_of[&e.target];
                if !scc_set.contains(&ti) {
                    base = join_max(base, bound[ti].map(|d| d + e.loop_depth));
                }
            }
        }
        let b = if cyclic[si] {
            if all_ok {
                // A witnessed/sanctioned cycle is one more bounded
                // dimension: the decreasing argument plays the role of
                // a loop counter.
                base.map(|d| d + 1)
            } else {
                None
            }
        } else {
            base
        };
        for &m in scc {
            bound[m] = b;
            if b.is_none() && top_cause[m].is_none() && cyclic[si] && !member_ok[m] {
                let f = &files[fns[m].0].fns[fns[m].1];
                top_cause[m] = Some((format!("unwitnessed recursion in `{}`", f.name), f.line));
            }
        }
    }

    // ---- finding 3: ⊤ reachable from a hot-path root ----
    // One deny finding per hot root whose closure contains a function
    // with a *local* ⊤ cause, with the shortest witness chain (BFS).
    for (i, &(fi, ni)) in fns.iter().enumerate() {
        let ff = &files[fi];
        let f = &ff.fns[ni];
        if !f.hot || bound[i].is_some() {
            continue;
        }
        if inline_waived(ff, "A8", f.line) || allowlist_waived(allowlist, ff, "A8") {
            continue;
        }
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut seen: HashSet<usize> = HashSet::new();
        let mut q: VecDeque<usize> = VecDeque::new();
        seen.insert(i);
        q.push_back(i);
        let mut culprit: Option<usize> = None;
        while let Some(n) = q.pop_front() {
            if top_cause[n].is_some() {
                culprit = Some(n);
                break;
            }
            for e in &edges[n] {
                let t = idx_of[&e.target];
                if seen.insert(t) {
                    parent.insert(t, n);
                    q.push_back(t);
                }
            }
        }
        let Some(c) = culprit else { continue };
        let mut chain: Vec<&str> = Vec::new();
        let mut n = c;
        loop {
            chain.push(files[fns[n].0].fns[fns[n].1].name.as_str());
            match parent.get(&n) {
                Some(&p) => n = p,
                None => break,
            }
        }
        chain.reverse();
        let (cause, cline) = top_cause[c].as_ref().map_or(("?".into(), 0), Clone::clone);
        let cpath = &files[fns[c].0].rel_path;
        out.push(Diagnostic {
            path: ff.rel_path.clone(),
            line: f.line,
            rule: "A8".into(),
            severity: "deny".into(),
            message: format!(
                "hot-path `{}` has step bound {}: {} — {cause} at {cpath}:{cline}; \
                 bound the loop or sanction with `// analyze: allow(A8): reason`",
                f.name,
                render_bound(bound[i]),
                chain.join(" → "),
            ),
        });
    }

    out
}

/// `max` on the bound lattice (`⊤` absorbs).
fn join_max(a: Bound, b: Bound) -> Bound {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ff = parse_file(path, src);
        check(&[ff], &[], &HashMap::new())
    }

    #[test]
    fn bound_rendering() {
        assert_eq!(render_bound(None), "⊤");
        assert_eq!(render_bound(Some(0)), "O(1)");
        assert_eq!(render_bound(Some(1)), "O(n)");
        assert_eq!(render_bound(Some(2)), "O(n·m)");
        assert_eq!(render_bound(Some(3)), "O(n^3)");
    }

    #[test]
    fn unbounded_spin_denied_in_scope_file() {
        let d = run(
            "crates/sim/src/event.rs",
            "fn spin(flag: &AtomicBool) { while flag.load(Ordering::Acquire) {} }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "A8");
        assert_eq!(d[0].severity, "deny");
        assert!(
            d[0].message.contains("no progress witness"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn monotone_while_and_breaking_loop_are_quiet() {
        let d = run(
            "crates/sim/src/event.rs",
            "fn f(n: u32) -> u32 {\n    let mut i = 0;\n    while i < n { i += 1; }\n\
             \x20   loop { break; }\n    i\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn sanctioned_spin_is_quiet_and_warn_scope_warns() {
        let d = run(
            "crates/sim/src/event.rs",
            "fn spin() {\n    // analyze: allow(A8): hardware poll, bounded by watchdog\n\
             \x20   loop { poll(); }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = run("crates/sim/src/render.rs", "fn g() { loop { step(); } }\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].severity, "warn");
    }

    #[test]
    fn recursion_without_witness_flagged_with_witness_quiet() {
        let d = run(
            "crates/mckp/src/dp.rs",
            "fn down(n: u32) -> u32 { if n == 0 { 0 } else { down(n - 1) } }\n\
             fn bad(n: u32) -> u32 { bad(n) }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("`bad` calls itself"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn hot_top_reachability_reports_chain() {
        let d = run(
            "crates/obs/src/lib.rs",
            "// analyze: hot-path\npub fn emit() { relay(); }\n\
             fn relay() { stall(); }\n\
             fn stall() { loop { step(); } }\n",
        );
        // obs is out of loop-finding scope, so the only finding is the
        // hot-path ⊤ chain.
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].severity, "deny");
        assert!(
            d[0].message.contains("emit → relay → stall"),
            "{}",
            d[0].message
        );
        assert!(d[0].message.contains('⊤'), "{}", d[0].message);
    }

    #[test]
    fn witnessed_recursion_bumps_degree_not_top() {
        let d = run(
            "crates/obs/src/lib.rs",
            "// analyze: hot-path\npub fn emit(n: u32) { halve(n); }\n\
             fn halve(n: u32) { if n > 0 { halve(n / 2); } }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn std_method_collisions_do_not_fabricate_recursion() {
        // `self.inner.push(…)` inside a workspace `push` is `Vec::push`,
        // not recursion.
        let d = run(
            "crates/sim/src/event.rs",
            "impl Q {\n    pub fn push(&mut self, v: u64) { self.inner.push(v); }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
