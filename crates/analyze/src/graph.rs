//! Phase 2: symbol resolution, the interprocedural call graph, and the
//! analyses that need it (A1 panic-reachability, interprocedural A2).
//!
//! Resolution is deliberately **over-approximate**: an unqualified call
//! `f(…)` or method call `.f(…)` resolves to *every* workspace function
//! named `f` in the caller's crate or its direct `rto-*` dependencies;
//! a qualified call `T::f(…)` resolves within the same scope but only
//! to functions whose surrounding `impl`/`trait` type is `T`. Calls
//! that resolve to nothing (std, vendored shims) contribute no edges,
//! and a qualified call on a known `std` type ([`STD_QUALS`]) never
//! falls back to bare-name matching — `Vec::new()` must not resolve to
//! every workspace constructor named `new`.
//! Over-approximation keeps the "no finding" direction trustworthy: if
//! A1 reports a public function as panic-free, no call chain the
//! scanner saw can reach a seed.

use crate::facts::{FileFacts, SeedFact, SeedKind};
use crate::{allowlist_waived, Diagnostic};
use rto_lint::allow::AllowEntry;
use std::collections::{HashMap, HashSet, VecDeque};

/// Crates whose public panic-reachability findings are `deny` (the
/// paper's algorithmic core must be total).
const DENY_CRATES: &[&str] = &["core", "mckp"];
/// Crates whose findings are `warn` (simulator/observability surface).
const WARN_CRATES: &[&str] = &["sim", "obs"];

/// Qualifiers that name well-known `std` types: a qualified call on one
/// of these that resolves to no workspace `impl` is a `std` call, not a
/// module-path call, so the bare-name fallback would only add spurious
/// edges (every `new`/`from`/`with_capacity` in the crate).
const STD_QUALS: &[&str] = &[
    "Vec",
    "String",
    "Box",
    "Rc",
    "Arc",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "VecDeque",
    "BinaryHeap",
    "Mutex",
    "RwLock",
    "Condvar",
    "PathBuf",
    "Path",
    "OsString",
    "CString",
    "Cell",
    "RefCell",
    "Cow",
    "Option",
    "Result",
    "Ordering",
    "Reverse",
    "PoisonError",
    "NonZeroUsize",
    "AtomicBool",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
];

/// Global function id: `(file index, fn index within the file)`.
pub(crate) type Gid = (usize, usize);

/// Run the call-graph analyses over every file's facts.
#[must_use]
pub fn check(
    files: &[FileFacts],
    allowlist: &[AllowEntry],
    deps: &HashMap<String, Vec<String>>,
) -> Vec<Diagnostic> {
    let g = Graph::build(files, allowlist, deps);
    let mut out = g.a1_reachability(files);
    out.extend(g.a2_interprocedural(files));
    out
}

/// The resolved call graph (shared with the A5 concurrency audit).
pub(crate) struct Graph {
    /// All functions, in deterministic `(file, fn)` order.
    pub(crate) fns: Vec<Gid>,
    /// Forward call edges, each target list sorted + deduped.
    pub(crate) edges: HashMap<Gid, Vec<Gid>>,
    /// Functions owning at least one *effective* (unwaived) seed.
    seeded: HashSet<Gid>,
    /// Transitive closure: functions from which a seed is reachable.
    can_panic: HashSet<Gid>,
}

impl Graph {
    pub(crate) fn build(
        files: &[FileFacts],
        allowlist: &[AllowEntry],
        deps: &HashMap<String, Vec<String>>,
    ) -> Self {
        // Name → candidate indices, per crate.
        let mut by_name: HashMap<(&str, &str), Vec<Gid>> = HashMap::new();
        let mut by_qual: HashMap<(&str, &str, &str), Vec<Gid>> = HashMap::new();
        let mut fns: Vec<Gid> = Vec::new();
        for (fi, ff) in files.iter().enumerate() {
            let ck = ff.crate_key();
            for (ni, f) in ff.fns.iter().enumerate() {
                let gid = (fi, ni);
                fns.push(gid);
                by_name.entry((ck, &f.name)).or_default().push(gid);
                if let Some(q) = &f.qual {
                    by_qual.entry((ck, q, &f.name)).or_default().push(gid);
                }
                // Trait methods are also reachable through the trait
                // name (`<T as Trait>::f`, `Trait::f`).
                if let Some(t) = &f.trait_name {
                    by_qual.entry((ck, t, &f.name)).or_default().push(gid);
                }
            }
        }

        let empty: Vec<String> = Vec::new();
        let mut edges: HashMap<Gid, Vec<Gid>> = HashMap::new();
        let mut seeded: HashSet<Gid> = HashSet::new();
        for (fi, ff) in files.iter().enumerate() {
            let ck = ff.crate_key();
            let dep_dirs = deps.get(ck).unwrap_or(&empty);
            // Resolution scope: the crate itself plus direct deps.
            let scope: Vec<&str> = std::iter::once(ck)
                .chain(dep_dirs.iter().map(String::as_str))
                .collect();
            for (ni, f) in ff.fns.iter().enumerate() {
                let gid = (fi, ni);
                if f.seeds.iter().any(|s| seed_effective(s, ff, allowlist)) {
                    seeded.insert(gid);
                }
                let mut targets: Vec<Gid> = Vec::new();
                for call in &f.calls {
                    let mut resolved = Vec::new();
                    if let Some(q) = &call.qual {
                        for ck2 in &scope {
                            if let Some(v) = by_qual.get(&(*ck2, q.as_str(), call.callee.as_str()))
                            {
                                resolved.extend_from_slice(v);
                            }
                        }
                    }
                    let std_qual = call.qual.as_deref().is_some_and(|q| STD_QUALS.contains(&q));
                    if resolved.is_empty() && !std_qual {
                        // Unqualified calls, and qualified calls whose
                        // qualifier is a *module* path rather than an
                        // impl type (`deep::pick(…)`), fall back to
                        // name matching — over-approximate, never
                        // under.
                        for ck2 in &scope {
                            if let Some(v) = by_name.get(&(*ck2, call.callee.as_str())) {
                                resolved.extend_from_slice(v);
                            }
                        }
                    }
                    targets.append(&mut resolved);
                }
                targets.sort_unstable();
                targets.dedup();
                targets.retain(|t| *t != gid); // self-recursion adds nothing
                if !targets.is_empty() {
                    edges.insert(gid, targets);
                }
            }
        }

        // Reverse fixpoint: a function can panic when it owns a seed or
        // calls (transitively) a function that does.
        let mut reverse: HashMap<Gid, Vec<Gid>> = HashMap::new();
        for (&caller, targets) in &edges {
            for &t in targets {
                reverse.entry(t).or_default().push(caller);
            }
        }
        let mut can_panic: HashSet<Gid> = seeded.clone();
        let mut work: VecDeque<Gid> = seeded.iter().copied().collect();
        while let Some(g) = work.pop_front() {
            if let Some(callers) = reverse.get(&g) {
                for &c in callers {
                    if can_panic.insert(c) {
                        work.push_back(c);
                    }
                }
            }
        }

        Graph {
            fns,
            edges,
            seeded,
            can_panic,
        }
    }

    /// A1: report public functions of the deny/warn crates that can
    /// transitively reach a panic seed, with a witness call chain.
    fn a1_reachability(&self, files: &[FileFacts]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for &gid in &self.fns {
            let (fi, ni) = gid;
            let Some(ff) = files.get(fi) else { continue };
            let Some(f) = ff.fns.get(ni) else { continue };
            let ck = ff.crate_key();
            let severity = if DENY_CRATES.contains(&ck) {
                "deny"
            } else if WARN_CRATES.contains(&ck) {
                "warn"
            } else {
                continue;
            };
            if !f.is_pub || !self.can_panic.contains(&gid) {
                continue;
            }
            let Some(chain) = self.witness(gid) else {
                continue;
            };
            let names: Vec<String> = chain
                .iter()
                .filter_map(|&(cfi, cni)| {
                    files
                        .get(cfi)
                        .and_then(|cf| cf.fns.get(cni))
                        .map(super::facts::FnFact::qualified)
                })
                .collect();
            let seed_desc = chain
                .last()
                .and_then(|&(cfi, cni)| {
                    let cf = files.get(cfi)?;
                    let cfn = cf.fns.get(cni)?;
                    cfn.seeds
                        .iter()
                        .filter(|s| !s.waived)
                        .min_by_key(|s| s.line)
                        .map(|s| format!("{} at {}:{}", seed_label(s.kind), cf.rel_path, s.line))
                })
                .unwrap_or_else(|| "a panic site".into());
            out.push(Diagnostic {
                path: ff.rel_path.clone(),
                line: f.line,
                rule: "A1".into(),
                severity: severity.into(),
                message: format!(
                    "public `{}` can transitively reach a panic: {} \u{2192} {}",
                    f.qualified(),
                    names.join(" \u{2192} "),
                    seed_desc
                ),
            });
        }
        out
    }

    /// Deterministic shortest witness: BFS over sorted adjacency from
    /// `from` to the nearest function that owns an effective seed.
    fn witness(&self, from: Gid) -> Option<Vec<Gid>> {
        if self.seeded.contains(&from) {
            return Some(vec![from]);
        }
        let mut parent: HashMap<Gid, Gid> = HashMap::new();
        let mut queue: VecDeque<Gid> = VecDeque::new();
        queue.push_back(from);
        let mut seen: HashSet<Gid> = HashSet::new();
        seen.insert(from);
        while let Some(g) = queue.pop_front() {
            let Some(targets) = self.edges.get(&g) else {
                continue;
            };
            for &t in targets {
                if !seen.insert(t) {
                    continue;
                }
                parent.insert(t, g);
                if self.seeded.contains(&t) {
                    let mut chain = vec![t];
                    let mut cur = t;
                    while let Some(&p) = parent.get(&cur) {
                        chain.push(p);
                        cur = p;
                    }
                    chain.reverse();
                    return Some(chain);
                }
                queue.push_back(t);
            }
        }
        None
    }

    /// Interprocedural A2: argument units must match the callee's
    /// parameter-name units. Only checked when every resolution
    /// candidate of matching arity agrees on the parameter's unit, so
    /// the method-name over-approximation cannot manufacture
    /// conflicting expectations.
    fn a2_interprocedural(&self, files: &[FileFacts]) -> Vec<Diagnostic> {
        // Rebuild the per-call candidate sets from the stored edges:
        // cheaper to recompute locally than to keep per-call targets.
        let mut by_name: HashMap<&str, Vec<Gid>> = HashMap::new();
        for &(fi, ni) in &self.fns {
            if let Some(f) = files.get(fi).and_then(|ff| ff.fns.get(ni)) {
                by_name.entry(&f.name).or_default().push((fi, ni));
            }
        }
        let mut out = Vec::new();
        for &gid in &self.fns {
            let (fi, ni) = gid;
            let Some(ff) = files.get(fi) else { continue };
            let Some(f) = ff.fns.get(ni) else { continue };
            let Some(targets) = self.edges.get(&gid) else {
                continue;
            };
            let target_set: HashSet<Gid> = targets.iter().copied().collect();
            for call in &f.calls {
                let Some(all) = by_name.get(call.callee.as_str()) else {
                    continue;
                };
                // Candidates: resolved targets of this caller with the
                // callee's name and matching arity.
                let cands: Vec<&crate::facts::FnFact> = all
                    .iter()
                    .filter(|g| target_set.contains(g))
                    .filter_map(|&(cfi, cni)| files.get(cfi).and_then(|cf| cf.fns.get(cni)))
                    .filter(|cf| cf.name == call.callee && cf.params.len() == call.arg_units.len())
                    .collect();
                if cands.is_empty() {
                    continue;
                }
                for (pos, &arg_unit) in call.arg_units.iter().enumerate() {
                    if !arg_unit.is_concrete() {
                        continue;
                    }
                    let expected: Vec<_> = cands
                        .iter()
                        .filter_map(|c| c.params.get(pos))
                        .filter(|(_, u)| u.is_concrete())
                        .collect();
                    let Some(first) = expected.first() else {
                        continue;
                    };
                    if expected.len() != cands.len() || expected.iter().any(|p| p.1 != first.1) {
                        continue; // candidates disagree / partial info
                    }
                    if first.1 != arg_unit {
                        out.push(Diagnostic {
                            path: ff.rel_path.clone(),
                            line: call.line,
                            rule: "A2".into(),
                            severity: "deny".into(),
                            message: format!(
                                "argument {} of `{}` carries {} but parameter `{}` expects {}",
                                pos + 1,
                                call.callee,
                                arg_unit,
                                first.0,
                                first.1
                            ),
                        });
                    }
                }
            }
        }
        out
    }
}

/// Is this seed live after inline *and* allowlist waivers? Allowlist
/// `L3` entries cover indexing seeds (they are the indexing lint's
/// whole-file escape hatch); `A1` entries cover every seed kind.
fn seed_effective(seed: &SeedFact, ff: &FileFacts, allowlist: &[AllowEntry]) -> bool {
    if seed.waived {
        return false;
    }
    if allowlist_waived(allowlist, ff, "A1") {
        return false;
    }
    if seed.kind == SeedKind::Index && allowlist_waived(allowlist, ff, "L3") {
        return false;
    }
    true
}

/// Human label for a seed kind, used in witness messages.
fn seed_label(kind: SeedKind) -> &'static str {
    match kind {
        SeedKind::PanicMacro => "panic-family macro",
        SeedKind::Unwrap => "`.unwrap()`",
        SeedKind::Expect => "`.expect(..)`",
        SeedKind::Index => "bare indexing",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn deps() -> HashMap<String, Vec<String>> {
        let mut d = HashMap::new();
        d.insert("core".to_string(), vec!["mckp".to_string()]);
        d.insert("mckp".to_string(), Vec::new());
        d
    }

    #[test]
    fn reaches_seed_through_call_chain() {
        let a = parse_file(
            "crates/core/src/a.rs",
            "pub fn api() { helper(); }\nfn helper() { inner(); }\n\
             fn inner(x: Option<u8>) { x.unwrap(); }\n",
        );
        let diags = check(&[a], &[], &deps());
        let a1: Vec<_> = diags.iter().filter(|d| d.rule == "A1").collect();
        assert_eq!(a1.len(), 1, "{diags:?}");
        assert!(a1[0].message.contains("api"));
        assert!(a1[0].message.contains("helper"));
        assert!(a1[0].message.contains("inner"));
        assert!(a1[0].message.contains("`.unwrap()`"));
        assert_eq!(a1[0].severity, "deny");
    }

    #[test]
    fn cross_crate_edge_respects_deps() {
        // core → mckp edge exists (core depends on mckp)…
        let core = parse_file(
            "crates/core/src/a.rs",
            "pub fn api() { Solver::solve_it(); }\n",
        );
        let mckp = parse_file(
            "crates/mckp/src/b.rs",
            "pub struct Solver;\nimpl Solver {\n    pub fn solve_it() { panic!(\"boom\") }\n}\n",
        );
        let diags = check(&[core, mckp], &[], &deps());
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "A1" && d.message.contains("api")),
            "{diags:?}"
        );
        // …but mckp → core does not (mckp has no core dep).
        let mckp2 = parse_file(
            "crates/mckp/src/b.rs",
            "pub fn clean() { core_only_helper(); }\n",
        );
        let core2 = parse_file(
            "crates/core/src/a.rs",
            "pub fn core_only_helper() { panic!(\"x\") }\n",
        );
        let diags = check(&[mckp2, core2], &[], &deps());
        assert!(
            !diags
                .iter()
                .any(|d| d.rule == "A1" && d.message.contains("clean")),
            "{diags:?}"
        );
    }

    #[test]
    fn waived_seed_does_not_taint() {
        let a = parse_file(
            "crates/core/src/a.rs",
            "pub fn api(x: Option<u8>) -> u8 {\n    \
             // lint: allow(A1): documented contract, caller validates\n    x.unwrap()\n}\n",
        );
        let diags = check(&[a], &[], &deps());
        assert!(diags.iter().all(|d| d.rule != "A1"), "{diags:?}");
    }

    #[test]
    fn private_fns_are_not_reported() {
        let a = parse_file("crates/core/src/a.rs", "fn quiet() { panic!(\"x\") }\n");
        let diags = check(&[a], &[], &deps());
        assert!(diags.iter().all(|d| d.rule != "A1"), "{diags:?}");
    }

    #[test]
    fn interprocedural_unit_mismatch() {
        let a = parse_file(
            "crates/core/src/a.rs",
            "pub fn set_deadline(deadline_ns: u64) {}\n\
             pub fn caller(w_ms: f64) { set_deadline(w_ms); }\n",
        );
        let diags = check(&[a], &[], &deps());
        let a2: Vec<_> = diags.iter().filter(|d| d.rule == "A2").collect();
        assert_eq!(a2.len(), 1, "{diags:?}");
        assert!(a2[0].message.contains("expects ns"), "{}", a2[0].message);
    }
}
