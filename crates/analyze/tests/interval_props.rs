//! Property tests for the A4 abstract domains: interval arithmetic is
//! cross-checked against concrete evaluation on random inputs, and the
//! site-emission logic is cross-checked against concrete hazards on
//! random literal expressions.
//!
//! The soundness contract under test: whenever the analyzer stays
//! quiet, the concrete execution is safe; whenever a *definite* site
//! fires on exact operands, the concrete hazard really occurs.

use proptest::prelude::*;
use rto_analyze::domains::{FltItv, IntItv, IntTy};
use rto_analyze::facts::A4Kind;
use rto_analyze::parse::parse_file;

/// Sorted pair → a well-formed interval plus a member drawn from it.
fn itv_with_member(lo: i64, hi: i64, pick: u64) -> (IntItv, i128) {
    let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    let span = (hi as i128 - lo as i128) as u128 + 1;
    let member = lo as i128 + (u128::from(pick) % span) as i128;
    (IntItv::new(lo as i128, hi as i128), member)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `x ∈ A, y ∈ B ⇒ x∘y ∈ A∘B` for every integer operator.
    #[test]
    fn int_arithmetic_contains_every_concrete_result(
        a_lo in -1_000_000i64..1_000_000,
        a_hi in -1_000_000i64..1_000_000,
        b_lo in -1_000_000i64..1_000_000,
        b_hi in -1_000_000i64..1_000_000,
        px in 0u64..=u64::MAX,
        py in 0u64..=u64::MAX,
    ) {
        let (a, x) = itv_with_member(a_lo, a_hi, px);
        let (b, y) = itv_with_member(b_lo, b_hi, py);
        let sum = a.add(b);
        prop_assert!(sum.lo <= x + y && x + y <= sum.hi, "add: {x}+{y} ∉ {sum}");
        let dif = a.sub(b);
        prop_assert!(dif.lo <= x - y && x - y <= dif.hi, "sub: {x}-{y} ∉ {dif}");
        let prd = a.mul(b);
        prop_assert!(prd.lo <= x * y && x * y <= prd.hi, "mul: {x}*{y} ∉ {prd}");
        if !b.contains(0) {
            let quo = a.div(b).expect("nonzero divisor interval divides");
            prop_assert!(
                quo.lo <= x / y && x / y <= quo.hi,
                "div: {x}/{y} ∉ {quo}"
            );
        }
        let j = a.join(b);
        prop_assert!(j.lo <= x && x <= j.hi && j.lo <= y && y <= j.hi, "join misses a member");
    }

    /// Same containment for float arithmetic (finite inputs).
    #[test]
    fn float_arithmetic_contains_every_concrete_result(
        a_lo in -1e9f64..1e9,
        a_hi in -1e9f64..1e9,
        b_lo in 0.5f64..1e9,
        b_hi in 0.5f64..1e9,
        ta in 0.0f64..1.0,
        tb in 0.0f64..1.0,
    ) {
        let (a_lo, a_hi) = if a_lo <= a_hi { (a_lo, a_hi) } else { (a_hi, a_lo) };
        let (b_lo, b_hi) = if b_lo <= b_hi { (b_lo, b_hi) } else { (b_hi, b_lo) };
        let a = FltItv::new(a_lo, a_hi);
        let b = FltItv::new(b_lo, b_hi);
        let x = a_lo + ta * (a_hi - a_lo);
        let y = b_lo + tb * (b_hi - b_lo);
        for (name, itv, conc) in [
            ("add", a.add(b), x + y),
            ("sub", a.sub(b), x - y),
            ("mul", a.mul(b), x * y),
            ("div", a.div(b), x / y),
        ] {
            prop_assert!(
                itv.lo <= conc && conc <= itv.hi,
                "{name}: {conc} ∉ [{}, {}]",
                itv.lo,
                itv.hi
            );
        }
    }

    /// Widening is an upper bound of both arguments.
    #[test]
    fn widening_covers_both_operands(
        a_lo in -1_000i64..1_000,
        a_hi in -1_000i64..1_000,
        b_lo in -1_000i64..1_000,
        b_hi in -1_000i64..1_000,
        px in 0u64..=u64::MAX,
        py in 0u64..=u64::MAX,
    ) {
        let (new, x) = itv_with_member(a_lo, a_hi, px);
        let (old, y) = itv_with_member(b_lo, b_hi, py);
        let w = new.widen(old);
        prop_assert!(w.lo <= x && x <= w.hi, "widen lost a member of `new`");
        prop_assert!(w.lo <= y && y <= w.hi, "widen lost a member of `old`");
    }

    /// For narrow types the float-fit rule is exact: a point interval
    /// fits iff the truncating cast is lossless.
    #[test]
    fn point_float_fit_agrees_with_a_concrete_cast(v in -5e9f64..5e9) {
        let u32t = IntTy::parse("u32").expect("u32 parses");
        let fits = FltItv::new(v, v).fits_int(u32t);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let casted = v as u32;
        let lossless = (f64::from(casted) - v.trunc()).abs() < f64::EPSILON;
        prop_assert_eq!(fits, lossless, "v = {}", v);
    }

    /// Exact-literal expressions: the analyzer's site emission matches
    /// the concrete hazard exactly (both directions).
    #[test]
    fn literal_expression_sites_match_concrete_hazards(
        a in 0u64..=u64::MAX,
        b in 0u64..=u64::MAX,
        c in 0u64..4,
        v in 0u64..=u64::MAX,
    ) {
        // `(a + b) / c`: overflow iff the mathematical sum exceeds u64,
        // div-zero iff c == 0.
        let src = format!("pub fn f() -> u64 {{ ({a}u64 + {b}u64) / {c}u64 }}\n");
        let ff = parse_file("crates/x/src/lib.rs", &src);
        let overflowed = u128::from(a) + u128::from(b) > u128::from(u64::MAX);
        let has_overflow = ff.a4.iter().any(|s| matches!(s.kind, A4Kind::Overflow));
        prop_assert_eq!(has_overflow, overflowed, "src: {}", src.trim());
        let has_div = ff.a4.iter().any(|s| matches!(s.kind, A4Kind::DivZero));
        prop_assert_eq!(has_div, c == 0, "src: {}", src.trim());

        // `v as u32`: lossy iff v exceeds u32.
        let src = format!("pub fn g() -> u32 {{ {v}u64 as u32 }}\n");
        let ff = parse_file("crates/x/src/lib.rs", &src);
        let has_cast = ff.a4.iter().any(|s| matches!(s.kind, A4Kind::LossyCast));
        prop_assert_eq!(has_cast, v > u64::from(u32::MAX), "src: {}", src.trim());
    }
}
