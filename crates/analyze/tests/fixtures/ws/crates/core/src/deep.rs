//! Fixture private helpers reached from the public surface.

pub(crate) fn halve(v_ns: u64) -> u64 {
    v_ns / 2
}

pub(crate) fn pick(slots: Option<u32>) -> u32 {
    // The seed hides inside a closure body; the scanner attributes it
    // to the enclosing function.
    let f = || slots.unwrap();
    f()
}
