//! Fixture trait dispatch: one impl panics, so any dynamic `.solve()`
//! call site over-approximates to both impls and is tainted.

/// The dispatch trait.
pub trait Solve {
    /// Produce a solution.
    fn solve(&self) -> u32;
}

/// Panic-free impl.
pub struct Careful;

impl Solve for Careful {
    fn solve(&self) -> u32 {
        0
    }
}

/// Unfinished impl with a panic-family seed.
pub struct Reckless;

impl Solve for Reckless {
    fn solve(&self) -> u32 {
        todo!("fixture unfinished branch")
    }
}

/// Tainted: `.solve()` may dispatch to `Reckless::solve`.
pub fn run_any(s: &Reckless) -> u32 {
    s.solve()
}
