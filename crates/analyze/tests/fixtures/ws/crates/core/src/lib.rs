//! Fixture core crate: public API surface for A1/A2 over the
//! deny-severity crate.

mod deep;
pub mod solver;

/// Clean: every reachable helper is panic-free.
pub fn settle_ns(budget_ns: u64) -> u64 {
    deep::halve(budget_ns)
}

/// Tainted through a cross-module private helper chain (the seed lives
/// inside a closure two files away).
pub fn schedule(slots: Option<u32>) -> u32 {
    deep::pick(slots)
}

/// Waived: the panic is a documented contract, so A1 stays quiet.
pub fn contract(x: Option<u32>) -> u32 {
    // lint: allow(A1): fixture documented contract, caller validates
    x.unwrap()
}

/// Interprocedural A2: passes a millisecond value where nanoseconds
/// are expected.
pub fn deadline_check(window_ms: f64) -> bool {
    within_ns(window_ms)
}

fn within_ns(limit_ns: u64) -> bool {
    limit_ns > 1_000
}

/// Intra-function A2: a bare `D − R` divisor.
pub fn density(c_ns: u64, d_ns: u64, r_ns: u64) -> u64 {
    c_ns / (d_ns - r_ns)
}
