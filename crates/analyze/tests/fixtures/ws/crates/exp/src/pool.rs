//! Fixture worker pool: blocking in spawned closures (direct and
//! through a helper) and atomic-ordering discipline.

use std::sync::atomic::{AtomicU64, Ordering};

/// Direct blocking site lexically inside the spawned closure.
pub fn spawn_reader() {
    std::thread::spawn(move || {
        let _bytes = std::fs::read("trials.bin");
    });
}

/// Helper that blocks; reached from a worker below, so the call site
/// inside the closure is flagged interprocedurally.
fn load_trials() -> usize {
    let _bytes = std::fs::read("trials.bin");
    0
}

/// Interprocedural blocking: the closure itself only calls a helper.
pub fn spawn_loader() {
    std::thread::spawn(move || {
        let _n = load_trials();
    });
}

/// Unjustified non-Relaxed ordering outside obs — flagged.
pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::AcqRel)
}

/// Justified ordering: the inline waiver keeps A5 quiet (and A3 keeps
/// the waiver honest).
pub fn publish(counter: &AtomicU64) {
    // lint: allow(A5): fixture release fence pairs with an Acquire load in the reader
    counter.store(1, Ordering::Release);
}

/// Relaxed needs no justification anywhere.
pub fn tally(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}
