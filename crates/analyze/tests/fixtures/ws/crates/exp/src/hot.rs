//! Fixture hot-path surface: every A7 allocation kind, a sanctioned
//! site, a reachable-warn chain, and an unannotated control.
//!
//! This file deliberately contains no `with_capacity`/`reserve`, so the
//! growth site below is flagged; the evidenced counterpart lives in
//! `ring.rs`.

/// Deny: string construction directly in a hot function.
// analyze: hot-path
pub fn emit_row(v: u64) -> String {
    format!("row {v}")
}

/// Deny: box churn in a hot function.
// analyze: hot-path
pub fn box_event(v: u64) -> Box<u64> {
    Box::new(v)
}

/// Deny: collect into a growable container in a hot function.
// analyze: hot-path
pub fn snapshot(xs: &[u64]) -> Vec<u64> {
    xs.iter().copied().collect()
}

/// Deny: growth without capacity evidence anywhere in this file.
// analyze: hot-path
pub fn enqueue(buf: &mut Vec<u64>, v: u64) {
    buf.push(v);
}

/// Warn with provenance: the hot entry only calls a helper that
/// allocates.
// analyze: hot-path
pub fn drain_all(n: u64) -> u64 {
    stage(n)
}

fn stage(n: u64) -> u64 {
    let labels = vec![n];
    labels.first().copied().unwrap_or(0)
}

/// Quiet: sanctioned allocation in a hot function.
// analyze: hot-path
pub fn label(v: u64) -> String {
    // analyze: allow(A7): fixture sanction — one label per trial, off the steady-state path
    v.to_string()
}

/// Quiet: unannotated functions are not scanned.
pub fn setup() -> Vec<u64> {
    let mut v = Vec::new();
    v.push(1);
    v
}
