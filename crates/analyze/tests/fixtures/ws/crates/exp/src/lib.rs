//! Fixture exp crate: A5 concurrency seeds — blocking calls inside
//! spawned workers, unjustified orderings, and a lock-order cycle.

pub mod pool;
pub mod state;
pub mod hot;
pub mod ring;
