//! Fixture shared state: a seeded lock-order cycle (`a`/`b` taken in
//! both orders) next to a pair that keeps a consistent global order.

use std::sync::Mutex;

/// Two guarded cells.
pub struct Shared {
    /// First lock in the sanctioned order.
    pub a: Mutex<u32>,
    /// Second lock in the sanctioned order.
    pub b: Mutex<u32>,
    /// Third lock, only ever taken after `a`.
    pub c: Mutex<u32>,
}

/// Takes `a` then `b`.
pub fn transfer_ab(s: &Shared) -> u32 {
    let x = *s.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let y = *s.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    x + y
}

/// Takes `b` then `a` — together with `transfer_ab` this is a
/// deadlock-capable cycle.
pub fn transfer_ba(s: &Shared) -> u32 {
    let y = *s.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let x = *s.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    y.wrapping_sub(x)
}

/// Consistent order `a` then `c`: no cycle, stays quiet.
pub fn audit_ac(s: &Shared) -> u32 {
    let x = *s.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let z = *s.c.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    x ^ z
}
