//! Fixture ring buffer: file-level capacity evidence discharges hot
//! growth sites.

/// Quiet: `with_capacity` in this file vouches for the push.
// analyze: hot-path
pub fn refill(n: usize) -> Vec<u64> {
    let mut buf = Vec::with_capacity(n);
    for _ in 0..n {
        buf.push(0);
    }
    buf
}
