//! Fixture mckp crate: A4 interval-analysis seeds at deny severity.

pub mod fptas;
pub mod seed;
pub mod shapes;
