//! A8 fixture: recursion shapes in the warn scope (`mckp` files off
//! the deny list).

/// Warn: direct recursion with no decreasing argument.
fn churn(v: u64) -> u64 {
    if v == 0 {
        0
    } else {
        churn(v)
    }
}

/// Warn (both members): mutual recursion with no decreasing argument.
fn flip(n: u64) -> u64 {
    flop(n)
}

fn flop(n: u64) -> u64 {
    flip(n)
}

/// Quiet: the recursive call strictly shrinks its argument.
fn shrink(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        shrink(n / 2)
    }
}

// analyze: allow(A8): fixture sanction — ping/pong alternates a finite phase
fn ping(n: u64) -> u64 {
    pong(n)
}

// analyze: allow(A8): fixture sanction — ping/pong alternates a finite phase
fn pong(n: u64) -> u64 {
    ping(n)
}
