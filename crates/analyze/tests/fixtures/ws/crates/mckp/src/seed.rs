//! Fixture RNG seeding: ambient randomness in a warn-scoped crate.

/// Warn: ambient RNG in `mckp` (a warn crate for A6).
pub fn jitter() -> u64 {
    let r = thread_rng();
    let _ = r;
    0
}
