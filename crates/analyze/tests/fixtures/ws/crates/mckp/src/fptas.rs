//! Fixture A4 seeds: float→int truncation, a widening loop
//! accumulator, a definite overflow, and a guarded vs unguarded
//! divisor. The file name matches a deny path, so every unproven site
//! here is an error.

/// Truncation hazard: nothing bounds `p / k`, so the cast is flagged.
pub fn scale_raw(p: f64, k: f64) -> u32 {
    (p / k).floor() as u32
}

/// Clean counterpart: the clamp pins the interval inside u32.
pub fn scale_clamped(p: f64, k: f64) -> u32 {
    (p / k).floor().clamp(0.0, u32::MAX as f64) as u32
}

/// Loop accumulator: widening settles `acc` at the full u64 range, so
/// the narrowing cast after the loop is flagged with that witness.
pub fn sum_into_u32(n: u64) -> u32 {
    let mut acc: u64 = 0;
    for i in 0..n {
        acc += i;
    }
    acc as u32
}

/// Definite overflow: both operands are exact, the product provably
/// exceeds u32.
pub fn ticks() -> u32 {
    2_000_000_000u32 * 3
}

/// Unguarded divisor: `k` spans the full u64 range, including zero.
pub fn per_item(total: u64, k: u64) -> u64 {
    total / k
}

/// Guarded counterpart: the early return shaves zero off `k`.
pub fn per_item_guarded(total: u64, k: u64) -> u64 {
    if k == 0 {
        return 0;
    }
    total / k
}

/// Waived: the narrowing is documented, so A4 stays quiet (and A3
/// keeps the waiver honest).
pub fn waived_narrow(p: f64) -> u32 {
    // lint: allow(A4): fixture documented saturation, caller pre-clamps
    p as u32
}
