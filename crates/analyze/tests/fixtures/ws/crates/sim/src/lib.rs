//! Fixture sim crate: warn-severity surface.

pub mod chain;
pub mod event;
pub mod grid;

/// Warn: bare indexing directly in a public function.
pub fn render(frame: &[u8], cursor: usize) -> u8 {
    frame[cursor]
}

/// Cross-unit arithmetic inside one expression.
pub fn drift(delta_ns: u64, jitter_ms: f64) -> f64 {
    jitter_ms + delta_ns as f64
}

// lint: allow(L1): fixture stale waiver, nothing to waive here
pub fn quiet() {}
pub mod report;
