//! A8 fixture: every loop shape on the deny path
//! (`crates/sim/src/event.rs` is in the A8 deny scope).

/// Deny: a spin loop with no progress witness.
fn spin(q: &Gate) {
    while q.busy() {}
}

/// Deny: `for` over an endless open range.
fn drain_forever(base: u64) -> u64 {
    let mut acc = base;
    for step in base.. {
        acc = acc.wrapping_add(step);
    }
    acc
}

/// Quiet: monotone guard, advanced every iteration.
fn settle(n: u64) -> u64 {
    let mut i = 0;
    while i < n {
        i += 1;
    }
    i
}

/// Quiet: the body reaches an unconditional top-level `break`.
fn one_shot(q: &Gate) {
    loop {
        q.arm();
        break;
    }
}

/// Quiet: a reviewed sanction covers the spin.
fn gated(q: &Gate) {
    // analyze: allow(A8): fixture sanction — gate is released by the watchdog
    while q.busy() {}
}

/// Quiet: bounded `for` with an exact literal trip count.
fn warm() -> u64 {
    let mut acc = 0;
    for i in 0..8 {
        acc = acc.wrapping_add(i);
    }
    acc
}

// analyze: hot-path
fn pump() {
    relay_stage();
}

fn relay_stage() {
    stall_stage();
}

/// Deny (and the ⊤ cause for `pump`'s chain): an unbounded stage two
/// calls below a hot-path root.
fn stall_stage() {
    loop {
        step_once();
    }
}

fn step_once() {}
