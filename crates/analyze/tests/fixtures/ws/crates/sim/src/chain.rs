//! Fixture: interprocedural fixpoint summaries. Direct recursion,
//! mutual recursion, a call-graph cycle through a trait method (all
//! cut at ⊤ with provenance), and a 3-deep acyclic summary chain that
//! stays precise end to end.

/// Direct recursion: the one-node cycle `{countdown}` is cut at ⊤.
fn countdown(fuel: u64) -> u64 {
    if fuel == 0 {
        0
    } else {
        countdown(fuel - 1)
    }
}

/// The ⊤-cut return flows into a lossy cast: A4 fires with an
/// `assumed ⊤` provenance tag naming the cycle.
pub fn recursion_sink(fuel: u64) -> u32 {
    countdown(fuel) as u32
}

/// Mutual recursion: a two-node cycle, both members cut together.
fn even_steps(fuel: u64) -> u64 {
    if fuel == 0 {
        0
    } else {
        odd_steps(fuel - 1)
    }
}

fn odd_steps(fuel: u64) -> u64 {
    if fuel == 0 {
        1
    } else {
        even_steps(fuel - 1)
    }
}

pub fn mutual_sink(fuel: u64) -> u32 {
    even_steps(fuel) as u32
}

/// A cycle that only closes through a trait method: `swing` calls
/// `Tick::tick`, whose impl calls `swing` back.
trait Tick {
    fn tick(&self, fuel: u64) -> u64;
}

struct Pendulum;

impl Tick for Pendulum {
    fn tick(&self, fuel: u64) -> u64 {
        if fuel == 0 {
            0
        } else {
            swing(self, fuel - 1)
        }
    }
}

fn swing(p: &Pendulum, fuel: u64) -> u64 {
    p.tick(fuel)
}

pub fn trait_cycle_sink(fuel: u64) -> u32 {
    swing(&Pendulum, fuel) as u32
}

/// 3-deep acyclic chain: `% 16` bounds the leaf, and the bound
/// survives two layers of summaries, so the final `as u8` is provably
/// lossless and stays quiet.
fn chain_leaf(x: u64) -> u64 {
    x % 16
}

fn chain_mid(x: u64) -> u64 {
    chain_leaf(x) + 1
}

fn chain_top(x: u64) -> u64 {
    chain_mid(x) * 2
}

pub fn chain_sink(x: u64) -> u8 {
    chain_top(x) as u8
}
