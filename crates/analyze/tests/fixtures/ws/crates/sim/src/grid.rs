//! Fixture: indexing covered by a live whole-file allowlist entry
//! (`lint.allow.toml`, rule L3), so A1 does not seed here even though
//! the L3 lint warning itself still exists.

/// Indexed lookup whose bounds are maintained by construction.
pub fn lookup(cells: &[u8], row: usize, stride: usize, col: usize) -> u8 {
    cells[row * stride + col]
}
