//! Fixture determinism surface: every A6 source kind with clean and
//! sanctioned counterparts.

use std::collections::{BTreeMap, HashMap, HashSet};

/// Tainted helper: hash-ordered iteration feeding an order-sensitive
/// reduction — the public caller below reports the witness chain.
fn tally(m: &HashMap<u32, f64>) -> f64 {
    m.values().sum()
}

/// Deny: reaches the tainted helper.
pub fn report(m: &HashMap<u32, f64>) -> f64 {
    tally(m)
}

/// Deny: `for` loop over a hash container.
pub fn drain(s: &HashSet<u32>) -> u32 {
    let mut n = 0;
    for v in s {
        n = n.max(*v);
    }
    n
}

/// Quiet: membership-only hash use is order-free.
pub fn dedup(seen: &mut HashSet<u32>, v: u32) -> bool {
    seen.insert(v)
}

/// Quiet: ordered iteration over a `BTreeMap`. (The parameter name must
/// not collide with a hash-bound ident elsewhere in the file — the
/// hash-ident set is file-granular, a documented over-approximation.)
pub fn ordered_total(totals: &BTreeMap<u32, u64>) -> u64 {
    let mut t = 0u64;
    for v in totals.values() {
        t = t.saturating_add(*v);
    }
    t
}

/// Deny: wall-clock read outside `obs::Stopwatch`.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

/// Deny: scheduler identity.
pub fn worker_tag() -> std::thread::ThreadId {
    std::thread::current().id()
}

/// Deny: ambient hasher seed.
pub fn fresh_hasher() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::new()
}

/// Deny: environment read.
pub fn configured() -> bool {
    std::env::var("RTO_MODE").is_ok()
}

/// Quiet: the sanction comment vouches for replay safety (and A3 keeps
/// it honest).
pub fn manifest() -> bool {
    // analyze: allow(A6): fixture sanction — reads a pinned manifest recorded in the replay bundle
    std::env::var("RTO_MANIFEST").is_ok()
}

/// Quiet: a private source no public function reaches.
fn idle_probe() -> std::time::Instant {
    std::time::Instant::now()
}
