//! End-to-end analysis of the fixture workspace under
//! `tests/fixtures/ws`: trait dispatch, closures, cross-module and
//! cross-crate calls, inline + allowlist waivers, and a golden SARIF
//! snapshot.
//!
//! Regenerate the snapshot after an intentional behavior change with:
//!
//! ```text
//! BLESS=1 cargo test -p rto-analyze --test fixture_ws
//! ```

use rto_analyze::{analyze_workspace, sarif, Analysis};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn analyze() -> Analysis {
    analyze_workspace(&fixture_root(), false).expect("fixture analysis")
}

/// All diagnostics whose rule is `rule`, as `path:line message`.
fn of_rule(a: &Analysis, rule: &str) -> Vec<String> {
    a.diagnostics
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| format!("{}:{} {}", d.path, d.line, d.message))
        .collect()
}

#[test]
fn a1_reachability_set_is_exact() {
    let a = analyze();
    let a1 = of_rule(&a, "A1");
    // Tainted: cross-module closure chain, trait dispatch (caller and
    // the panicking impl), and direct indexing in the warn crate.
    assert!(
        a1.iter()
            .any(|m| m.contains("`schedule`") && m.contains("pick")),
        "{a1:?}"
    );
    assert!(
        a1.iter()
            .any(|m| m.contains("`run_any`") && m.contains("solve")),
        "{a1:?}"
    );
    assert!(a1.iter().any(|m| m.contains("`Reckless::solve`")), "{a1:?}");
    assert!(a1.iter().any(|m| m.contains("`render`")), "{a1:?}");
    // Clean, waived, or allowlisted surfaces stay silent.
    for quiet in [
        "`settle_ns`",
        "`contract`",
        "`lookup`",
        "`Careful::solve`",
        "`deadline_check`",
    ] {
        assert!(
            !a1.iter().any(|m| m.contains(quiet)),
            "{quiet} must not be A1-tainted: {a1:?}"
        );
    }
    assert_eq!(a1.len(), 4, "{a1:?}");
    // Severity mapping: deny in core, warn in sim.
    for d in a.diagnostics.iter().filter(|d| d.rule == "A1") {
        let expect = if d.path.starts_with("crates/core/") {
            "deny"
        } else {
            "warn"
        };
        assert_eq!(d.severity, expect, "{d:?}");
    }
}

#[test]
fn a2_findings_cover_local_and_interprocedural() {
    let a = analyze();
    let a2 = of_rule(&a, "A2");
    assert!(
        a2.iter()
            .any(|m| m.contains("within_ns") && m.contains("expects ns")),
        "interprocedural arg/param mismatch: {a2:?}"
    );
    assert!(
        a2.iter().any(|m| m.contains("unguarded difference")),
        "{a2:?}"
    );
    assert!(a2.iter().any(|m| m.contains("cross-unit `+`")), "{a2:?}");
    assert_eq!(a2.len(), 3, "{a2:?}");
}

#[test]
fn a3_reports_stale_waivers_only() {
    let a = analyze();
    let a3 = of_rule(&a, "A3");
    assert!(
        a3.iter()
            .any(|m| m.starts_with("lint.allow.toml") && m.contains("gone.rs")),
        "{a3:?}"
    );
    assert!(
        a3.iter()
            .any(|m| m.contains("crates/sim/src/lib.rs") && m.contains("allow(L1)")),
        "{a3:?}"
    );
    assert_eq!(a3.len(), 2, "live waivers must stay quiet: {a3:?}");
}

#[test]
fn a4_interval_findings_carry_witness_intervals() {
    let a = analyze();
    let a4 = of_rule(&a, "A4");
    // Float truncation with an unbounded witness.
    assert!(
        a4.iter()
            .any(|m| m.contains("(p / k).floor()") && m.contains("as u32")),
        "{a4:?}"
    );
    // Widened loop accumulator reports the settled type-range witness.
    assert!(
        a4.iter()
            .any(|m| m.contains("`acc` ∈ [0, 2^64-1]") && m.contains("as u32")),
        "{a4:?}"
    );
    // Exact-operand overflow is definite ("exceeds", not "not provably").
    assert!(
        a4.iter()
            .any(|m| m.contains("[6000000000, 6000000000]") && m.contains("exceeds")),
        "{a4:?}"
    );
    // Unguarded divisors, local (fixture mckp) and in fixture core.
    assert!(
        a4.iter()
            .any(|m| m.contains("total / k") && m.contains("contains zero")),
        "{a4:?}"
    );
    assert!(
        a4.iter()
            .any(|m| m.starts_with("crates/core/src/lib.rs:36") && m.contains("contains zero")),
        "{a4:?}"
    );
    assert_eq!(a4.len(), 8, "{a4:?}");
    // Clean or waived counterparts stay quiet.
    for line in [13, 14, 38, 42, 49] {
        assert!(
            !a4.iter()
                .any(|m| m.starts_with(&format!("crates/mckp/src/fptas.rs:{line} "))),
            "line {line} must be quiet: {a4:?}"
        );
    }
    // Severity: deny on the mckp deny path, warn elsewhere.
    for d in a.diagnostics.iter().filter(|d| d.rule == "A4") {
        let expect = if d.path.starts_with("crates/mckp/") {
            "deny"
        } else {
            "warn"
        };
        assert_eq!(d.severity, expect, "{d:?}");
    }
}

#[test]
fn a5_detects_cycle_ordering_and_blocking_in_workers() {
    let a = analyze();
    let a5 = of_rule(&a, "A5");
    // Direct blocking site inside the spawned closure.
    assert!(
        a5.iter()
            .any(|m| m.contains("fs::read") && m.contains("inside a spawned worker")),
        "{a5:?}"
    );
    // Interprocedural: the closure only calls a helper that blocks.
    assert!(
        a5.iter()
            .any(|m| m.contains("`load_trials`") && m.contains("reaches file I/O")),
        "{a5:?}"
    );
    // Unjustified non-Relaxed ordering outside obs.
    assert!(a5.iter().any(|m| m.contains("Ordering::AcqRel")), "{a5:?}");
    // Seeded lock-order cycle, reported once per unordered pair.
    assert!(
        a5.iter()
            .any(|m| m.contains("lock-order cycle: `a` and `b`")),
        "{a5:?}"
    );
    assert_eq!(a5.len(), 4, "{a5:?}");
    // Quiet: justified Release store, Relaxed ops, and the `a` → `c`
    // pair that keeps a consistent order.
    assert!(
        !a5.iter().any(|m| m.contains("Ordering::Release")),
        "{a5:?}"
    );
    assert!(!a5.iter().any(|m| m.contains("`c`")), "{a5:?}");
    // All fixture A5 findings land in the deny crate.
    for d in a.diagnostics.iter().filter(|d| d.rule == "A5") {
        assert_eq!(d.severity, "deny", "{d:?}");
    }
}

#[test]
fn a6_determinism_set_is_exact() {
    let a = analyze();
    let a6 = of_rule(&a, "A6");
    // Interprocedural witness: the public caller names the tainted
    // helper and the order-sensitive reduction it performs.
    assert!(
        a6.iter().any(|m| m.contains("`report`")
            && m.contains("report → tally")
            && m.contains("`sum` reduction")),
        "{a6:?}"
    );
    // Direct `for` loop over a hash container.
    assert!(
        a6.iter()
            .any(|m| m.contains("`drain`") && m.contains("`for` over hash-ordered")),
        "{a6:?}"
    );
    // Each remaining source kind appears once.
    for (fname, source) in [
        ("`stamp`", "wall-clock read"),
        ("`worker_tag`", "thread::current()"),
        ("`fresh_hasher`", "ambient hasher seed"),
        ("`configured`", "environment read"),
        ("`jitter`", "ambient RNG"),
        ("`spawn_reader`", "filesystem read"),
    ] {
        assert!(
            a6.iter().any(|m| m.contains(fname) && m.contains(source)),
            "{fname} with {source}: {a6:?}"
        );
    }
    // Interprocedural filesystem taint carries the chain.
    assert!(
        a6.iter()
            .any(|m| m.contains("spawn_loader → load_trials → filesystem read")),
        "{a6:?}"
    );
    // Quiet: membership-only hash use, ordered containers, sanctioned
    // sinks, and private sources no public function reaches.
    for quiet in ["`dedup`", "`ordered_total`", "`manifest`", "`idle_probe`"] {
        assert!(
            !a6.iter().any(|m| m.contains(quiet)),
            "{quiet} must not be A6-tainted: {a6:?}"
        );
    }
    assert_eq!(a6.len(), 9, "{a6:?}");
    // Severity: deny in sim/exp (replay-scoped), warn in mckp.
    for d in a.diagnostics.iter().filter(|d| d.rule == "A6") {
        let expect = if d.path.starts_with("crates/mckp/") {
            "warn"
        } else {
            "deny"
        };
        assert_eq!(d.severity, expect, "{d:?}");
    }
}

#[test]
fn a7_hotpath_set_is_exact() {
    let a = analyze();
    let a7 = of_rule(&a, "A7");
    // Every allocation kind fires directly inside an annotated hot
    // function, with `hot `...`` provenance.
    for (site, fname) in [
        ("`format!`", "emit_row"),
        ("`Box::new`", "box_event"),
        ("`.collect()`", "snapshot"),
        ("`buf.push(..)`", "enqueue"),
    ] {
        assert!(
            a7.iter()
                .any(|m| m.contains(site) && m.contains(&format!("hot `{fname}`"))),
            "{site} in {fname}: {a7:?}"
        );
    }
    // Reachable-only allocation warns and carries the call chain.
    assert!(
        a7.iter().any(
            |m| m.contains("`vec![..]`") && m.contains("reachable from hot: drain_all → stage")
        ),
        "{a7:?}"
    );
    // Quiet: sanctioned site, unannotated function, and growth vouched
    // for by file-level capacity evidence.
    for quiet in ["`label`", "`setup`", "`refill`"] {
        assert!(
            !a7.iter().any(|m| m.contains(quiet)),
            "{quiet} must be quiet: {a7:?}"
        );
    }
    assert_eq!(a7.len(), 5, "{a7:?}");
    // Severity: deny when directly hot, warn when merely reachable.
    let denies = a
        .diagnostics
        .iter()
        .filter(|d| d.rule == "A7" && d.severity == "deny")
        .count();
    let warns = a
        .diagnostics
        .iter()
        .filter(|d| d.rule == "A7" && d.severity == "warn")
        .count();
    assert_eq!((denies, warns), (4, 1));
}

#[test]
fn a8_termination_set_is_exact() {
    let a = analyze();
    let a8 = of_rule(&a, "A8");
    // Deny path (sim/event.rs): unwitnessed spin, endless `for`, the
    // unbounded stage, and the hot-path ⊤ chain that reaches it.
    assert!(
        a8.iter()
            .any(|m| m.contains("`while q.busy()`") && m.contains("`spin`")),
        "{a8:?}"
    );
    assert!(
        a8.iter()
            .any(|m| m.contains("`drain_forever`") && m.contains("endless source")),
        "{a8:?}"
    );
    assert!(
        a8.iter()
            .any(|m| m.contains("`stall_stage`") && m.contains("no progress witness")),
        "{a8:?}"
    );
    assert!(
        a8.iter().any(|m| m.contains("hot-path `pump`")
            && m.contains("step bound ⊤")
            && m.contains("pump → relay_stage → stall_stage")),
        "{a8:?}"
    );
    // Warn scope (mckp/shapes.rs): direct and mutual recursion without
    // a decreasing argument.
    assert!(
        a8.iter().any(|m| m.contains("`churn` calls itself")),
        "{a8:?}"
    );
    assert!(
        a8.iter()
            .any(|m| m.contains("`flip` is mutually recursive with `flop`")),
        "{a8:?}"
    );
    assert!(
        a8.iter()
            .any(|m| m.contains("`flop` is mutually recursive with `flip`")),
        "{a8:?}"
    );
    // Quiet: monotone guard, top-level break, sanctioned spin, bounded
    // and exact-count `for`, decreasing recursion, sanctioned cycle.
    for quiet in [
        "`settle`",
        "`one_shot`",
        "`gated`",
        "`warm`",
        "`shrink`",
        "`ping`",
        "`pong`",
    ] {
        assert!(
            !a8.iter().any(|m| m.contains(quiet)),
            "{quiet} must be A8-quiet: {a8:?}"
        );
    }
    assert_eq!(a8.len(), 7, "{a8:?}");
    // Severity: deny on the scoped file, warn elsewhere in the product
    // crates; the hot-path ⊤ chain is always deny.
    for d in a.diagnostics.iter().filter(|d| d.rule == "A8") {
        let expect = if d.path == "crates/sim/src/event.rs" {
            "deny"
        } else {
            "warn"
        };
        assert_eq!(d.severity, expect, "{d:?}");
    }
}

#[test]
fn fixpoint_cycles_cut_at_top_with_provenance() {
    // The engine terminates on every cycle shape (this test finishing
    // is the termination witness) and tags diagnostics that lean on a
    // ⊤-cut summary with the cycle that forced the cut.
    let a = analyze();
    let a4 = of_rule(&a, "A4");
    // Direct recursion: one-node cycle.
    assert!(
        a4.iter().any(|m| m.starts_with("crates/sim/src/chain.rs")
            && m.contains("assumed ⊤: cycle through `countdown`")),
        "{a4:?}"
    );
    // Mutual recursion: both members named, sorted.
    assert!(
        a4.iter()
            .any(|m| m.contains("assumed ⊤: cycle through `even_steps`, `odd_steps`")),
        "{a4:?}"
    );
    // Cycle that only closes through a trait method.
    assert!(
        a4.iter()
            .any(|m| m.contains("assumed ⊤: cycle through `Pendulum::tick`, `swing`")),
        "{a4:?}"
    );
    // The 3-deep acyclic chain keeps the leaf's `% 16` bound through
    // two summary hops: `chain_top(x) as u8` is provably lossless.
    assert!(
        !a4.iter().any(|m| m.contains("chain_top")),
        "3-deep summary chain must stay precise: {a4:?}"
    );
}

/// Recursively copy the fixture workspace so cached runs can write
/// `target/rto-analyze/` without dirtying the source tree.
fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("mkdir");
    for entry in std::fs::read_dir(from).expect("read_dir") {
        let entry = entry.expect("dir entry");
        let dst = to.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_tree(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).expect("copy");
        }
    }
}

#[test]
fn warm_cache_diagnostics_are_byte_identical() {
    let tmp = std::env::temp_dir().join(format!("rto-analyze-fixture-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    copy_tree(&fixture_root(), &tmp);

    let cold = analyze_workspace(&tmp, true).expect("cold run");
    let warm = analyze_workspace(&tmp, true).expect("warm run");
    assert_eq!(
        warm.files_reparsed, 0,
        "warm run must be served entirely from cache"
    );
    assert_eq!(
        sarif::sarif(&cold.diagnostics),
        sarif::sarif(&warm.diagnostics),
        "warm-cache diagnostics drifted from the cold run"
    );

    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn golden_sarif_snapshot() {
    let a = analyze();
    let rendered = sarif::sarif(&a.diagnostics);
    let golden = fixture_root().join("../expected.sarif");
    if std::env::var("BLESS").is_ok() {
        std::fs::write(&golden, &rendered).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden).expect("read expected.sarif");
    assert_eq!(
        rendered, expected,
        "SARIF drifted from tests/fixtures/expected.sarif; re-bless with BLESS=1 if intended"
    );
}

#[test]
fn repeat_runs_are_deterministic() {
    let first = sarif::sarif(&analyze().diagnostics);
    let second = sarif::sarif(&analyze().diagnostics);
    assert_eq!(first, second);
}

#[test]
fn parser_sees_through_lexical_traps() {
    // Seeds hidden inside raw strings, byte strings, and nested block
    // comments must not count; the real one after them must.
    let src = r####"
pub fn f(x: Option<u8>) -> u8 {
    let _doc = r#"call .unwrap() like this"#;
    /* .unwrap() in a comment /* nested */ */
    let _s = b"panic!(no)";
    x.unwrap()
}
"####;
    let facts = rto_analyze::parse::parse_file("crates/core/src/t.rs", src);
    let seeds = &facts.fns[0].seeds;
    assert_eq!(seeds.len(), 1, "{seeds:?}");
    assert_eq!(seeds[0].line, 6);
}
