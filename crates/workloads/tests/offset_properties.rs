//! Property tests pinning the checked `usize` neighborhood arithmetic
//! that replaced the old `(x as isize + dx) as usize` index casts in
//! the vision/SIFT kernels (rto-analyze rule A4).
//!
//! The rewrites must be *exactly* the old arithmetic, not merely
//! "close": the kernels' golden-image tests compare outputs
//! byte-for-byte, so any divergence in the index math would show up as
//! a silently different tap position. Two identities carry the whole
//! migration:
//!
//! * `x.wrapping_add_signed(dx)` is bit-identical to
//!   `(x as isize + dx) as usize` (both are two's-complement addition
//!   on the same 64 bits);
//! * the Gaussian blur's edge clamp
//!   `(x + i).saturating_sub(radius).min(w - 1)` equals the old
//!   `(x as isize + i as isize - radius).clamp(0, w as isize - 1) as usize`
//!   whenever the operands are in the kernel's validated ranges.

use proptest::prelude::*;

/// The retired index form: cast to `isize`, offset, cast back. The
/// inner `+` is spelled `wrapping_add` so the reference itself is
/// total — in the retired code a wrapped sum was what release builds
/// computed (and debug builds panicked, which the loop bounds made
/// unreachable).
fn old_offset(x: usize, dx: isize) -> usize {
    #[allow(clippy::cast_possible_wrap, clippy::cast_sign_loss)]
    {
        (x as isize).wrapping_add(dx) as usize
    }
}

/// The retired blur tap clamp (closure `clamp_x` in the old `blur`).
fn old_blur_tap(x: usize, i: usize, radius: usize, w: usize) -> usize {
    #[allow(clippy::cast_possible_wrap, clippy::cast_sign_loss)]
    {
        (x as isize + i as isize - radius as isize).clamp(0, w as isize - 1) as usize
    }
}

/// The new tap position used by `Layer::blur`.
fn new_blur_tap(x: usize, i: usize, radius: usize, w: usize) -> usize {
    (x + i).saturating_sub(radius).min(w - 1)
}

proptest! {
    /// `wrapping_add_signed` is the old double cast, for *every* input
    /// — including offsets that would take the index below zero, where
    /// both forms wrap identically (the kernels' loop bounds keep such
    /// taps unreachable, but the arithmetic must still agree).
    #[test]
    fn wrapping_add_signed_is_the_old_cast(
        x in 0usize..=usize::MAX,
        dx in isize::MIN..=isize::MAX,
    ) {
        prop_assert_eq!(x.wrapping_add_signed(dx), old_offset(x, dx));
    }

    /// The ±1 neighborhood taps used by Sobel/Harris/SIFT extrema:
    /// interior pixels (`1 ≤ x`) with `dx ∈ {-1, 0, 1}` resolve to the
    /// same neighbor under both forms.
    #[test]
    fn neighborhood_taps_agree(x in 1usize..10_000, dx in -1isize..=1) {
        prop_assert_eq!(x.wrapping_add_signed(dx), old_offset(x, dx));
    }

    /// The blur edge clamp: for every in-range pixel `x < w`, kernel
    /// index `i ≤ 2·radius`, and the radius bound the kernel enforces
    /// (`radius ≤ 255`), the checked form lands on the same clamped
    /// tap as the old isize clamp.
    #[test]
    fn blur_tap_agrees(
        w in 1usize..5_000,
        radius in 0usize..=255,
        x in 0usize..5_000,
        i in 0usize..=510,
    ) {
        let x = x % w; // in-range pixel
        let i = i.min(2 * radius); // kernel index
        prop_assert_eq!(
            new_blur_tap(x, i, radius, w),
            old_blur_tap(x, i, radius, w)
        );
    }
}
