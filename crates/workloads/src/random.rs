//! The §6.2 random workload generator.
//!
//! "A set of 30 real-time tasks are randomly generated … `C_{i,1}` and
//! `C_i` are random values from 0 to 20 ms, `C_{i,2}` is equal to `C_i`.
//! `D_i`, which is equal to `T_i`, is a random integer value from 600 ms
//! to 700 ms. In benefit function `G_i(r_i)`, the benefit values are
//! probability values to get computation results 10 %, 20 %, …, 100 %.
//! The associated estimated response time is randomly generated from
//! 100 ms to 200 ms with an increasing order."

use rto_core::benefit::BenefitFunction;
use rto_core::odm::OdmTask;
use rto_core::task::Task;
use rto_core::time::Duration;
use rto_stats::Rng;

/// Parameters of the §6.2 generator (defaults reproduce the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct RandomSystemParams {
    /// Number of tasks (paper: 30).
    pub num_tasks: usize,
    /// WCET range in ms for `C_i` and `C_{i,1}` (paper: (0, 20]; the
    /// lower bound is clamped to 0.1 ms to keep tasks well-formed).
    pub wcet_range_ms: (f64, f64),
    /// Integer period/deadline range in ms (paper: 600–700).
    pub period_range_ms: (u64, u64),
    /// Number of probability levels (paper: 10, i.e. 10 %…100 %).
    pub probability_levels: usize,
    /// Response-time range in ms for the benefit points (paper: 100–200).
    pub response_range_ms: (f64, f64),
}

impl Default for RandomSystemParams {
    fn default() -> Self {
        RandomSystemParams {
            num_tasks: 30,
            wcet_range_ms: (0.1, 20.0),
            period_range_ms: (600, 700),
            probability_levels: 10,
            response_range_ms: (100.0, 200.0),
        }
    }
}

/// Generates one §6.2 system.
///
/// The benefit of local execution is 0 (a local run never produces the
/// "higher-performance output" the objective counts), and level `k`
/// carries probability `k / levels` at a random, strictly increasing
/// response time.
///
/// # Panics
///
/// Panics if the parameter ranges are inverted or empty.
pub fn random_system(params: &RandomSystemParams, rng: &mut Rng) -> Vec<OdmTask> {
    assert!(params.num_tasks > 0, "need at least one task");
    assert!(
        params.wcet_range_ms.0 > 0.0 && params.wcet_range_ms.0 <= params.wcet_range_ms.1,
        "invalid WCET range"
    );
    assert!(
        params.period_range_ms.0 > 0 && params.period_range_ms.0 <= params.period_range_ms.1,
        "invalid period range"
    );
    assert!(params.probability_levels > 0, "need at least one level");
    assert!(
        params.response_range_ms.0 > 0.0 && params.response_range_ms.0 < params.response_range_ms.1,
        "invalid response range"
    );
    (0..params.num_tasks)
        .map(|i| {
            let (wlo, whi) = params.wcet_range_ms;
            let c_ms = rng.f64_range(wlo, whi);
            let c1_ms = rng.f64_range(wlo, whi);
            let t_ms = rng.u64_range(params.period_range_ms.0, params.period_range_ms.1);
            let c = Duration::from_ms_f64_clamped(c_ms);
            let c1 = Duration::from_ms_f64_clamped(c1_ms);
            let task = Task::builder(i, format!("sim-task-{i}"))
                .local_wcet(c)
                .setup_wcet(c1)
                .compensation_wcet(c) // C_{i,2} = C_i
                .period(Duration::from_ms(t_ms))
                .build()
                // lint: allow(L3): generator invariants (positive WCETs < period) hold by construction
                .expect("generated parameters satisfy the model");

            // Increasing response times in [lo, hi).
            let (rlo, rhi) = params.response_range_ms;
            let mut times: Vec<f64> = (0..params.probability_levels)
                .map(|_| rng.f64_range(rlo, rhi))
                .collect();
            times.sort_by(f64::total_cmp); // rng yields finite values
            let mut durations = Vec::with_capacity(times.len());
            let mut prev = Duration::ZERO;
            for t in times {
                let mut d = Duration::from_ms_f64_clamped(t);
                if d <= prev {
                    d = prev + Duration::from_ns(1); // enforce strict increase
                }
                durations.push(d);
                prev = d;
            }
            let probabilities: Vec<f64> = (1..=params.probability_levels)
                .map(|k| k as f64 / params.probability_levels as f64)
                .collect();
            let benefit =
                BenefitFunction::from_success_probabilities(0.0, &durations, &probabilities)
                    // lint: allow(L3): durations strictly increase and probabilities are monotone by construction
                    .expect("constructed monotone");
            OdmTask::new(task, benefit)
        })
        .collect()
}

/// UUniFast (Bini & Buttazzo 2005): draws `n` task utilizations summing
/// exactly to `total`, uniformly over the valid simplex.
///
/// The standard generator for acceptance-ratio experiments: unlike naive
/// normalization it does not bias toward equal shares.
///
/// # Panics
///
/// Panics if `n == 0`, or `total` is not finite and positive.
pub fn uunifast(n: usize, total: f64, rng: &mut Rng) -> Vec<f64> {
    assert!(n > 0, "uunifast: need at least one task");
    assert!(
        total.is_finite() && total > 0.0,
        "uunifast: total utilization must be positive"
    );
    let mut utils = Vec::with_capacity(n);
    let mut remaining = total;
    for i in 1..n {
        let remaining_tasks = (n - i) as f64; // ≥ 1: `i` ranges over 1..n
        let next = remaining * rng.f64().powf(1.0 / remaining_tasks);
        utils.push(remaining - next);
        remaining = next;
    }
    utils.push(remaining);
    utils
}

/// Generates a task set with UUniFast-distributed *offloaded densities*:
/// each task gets a density share `ρ_i` of `total_density`, a random
/// period, response time, and costs backed out so that
/// `(C_{i,1}+C_{i,2})/(D_i−R_i) = ρ_i`. Used by acceptance-ratio sweeps.
///
/// Tasks whose backed-out costs would be degenerate (below 2 ms) are
/// clamped, so the realized total density can deviate slightly from
/// `total_density` at extreme parameters.
///
/// # Panics
///
/// Propagates the [`uunifast`] panics.
pub fn uunifast_offloaded_system(
    n: usize,
    total_density: f64,
    rng: &mut Rng,
) -> Vec<(rto_core::task::Task, Duration)> {
    let shares = uunifast(n, total_density, rng);
    shares
        .iter()
        .enumerate()
        .map(|(i, &rho)| {
            let period = 400 + rng.u64_below(400);
            let r = 50 + rng.u64_below(period / 3);
            let slack = period - r;
            let total_c =
                ((slack as f64 * rho).round().clamp(0.0, u64::MAX as f64) as u64).clamp(2, slack);
            let c1 = (total_c / 5).max(1);
            let c2 = (total_c - c1).max(1);
            let task = Task::builder(i, format!("uuf-{i}"))
                .local_wcet(Duration::from_ms(c2.min(period)))
                .setup_wcet(Duration::from_ms(c1))
                .compensation_wcet(Duration::from_ms(c2))
                .period(Duration::from_ms(period))
                .build()
                // lint: allow(L3): parameters are backed out from a feasible utilization point
                .expect("backed-out parameters are valid");
            (task, Duration::from_ms(r))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = RandomSystemParams::default();
        assert_eq!(p.num_tasks, 30);
        assert_eq!(p.period_range_ms, (600, 700));
        assert_eq!(p.probability_levels, 10);
    }

    #[test]
    fn generates_valid_systems() {
        let mut rng = Rng::seed_from(1);
        let sys = random_system(&RandomSystemParams::default(), &mut rng);
        assert_eq!(sys.len(), 30);
        for t in &sys {
            let task = t.task();
            assert!(task.local_wcet() <= Duration::from_ms(20));
            assert!(task.setup_wcet() <= Duration::from_ms(20));
            assert_eq!(task.compensation_wcet(), task.local_wcet());
            assert!(task.period() >= Duration::from_ms(600));
            assert!(task.period() <= Duration::from_ms(700));
            assert!(task.is_implicit_deadline());
            // Benefit: 11 points (local + 10 levels), values 0.1..1.0.
            assert_eq!(t.benefit().num_levels(), 11);
            assert_eq!(t.benefit().local_value(), 0.0);
            assert_eq!(t.benefit().points()[10].value, 1.0);
            for p in t.benefit().offload_points() {
                assert!(p.response_time >= Duration::from_ms(100));
                assert!(p.response_time < Duration::from_ms(200) + Duration::from_ns(20));
            }
        }
    }

    #[test]
    fn total_utilization_is_moderate() {
        // 30 tasks with C ~ U(0,20] and T ~ 650ms: expected utilization
        // ~0.46; each draw should stay clearly below 1 so that the
        // all-local plan is feasible (as the paper's setup implies).
        let mut rng = Rng::seed_from(2);
        for _ in 0..20 {
            let sys = random_system(&RandomSystemParams::default(), &mut rng);
            let util: f64 = sys.iter().map(|t| t.task().local_utilization()).sum();
            assert!(util < 1.0, "utilization {util}");
            assert!(util > 0.2, "utilization {util}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = random_system(&RandomSystemParams::default(), &mut Rng::seed_from(3));
        let b = random_system(&RandomSystemParams::default(), &mut Rng::seed_from(3));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.task(), y.task());
            assert_eq!(x.benefit(), y.benefit());
        }
    }

    #[test]
    fn custom_parameters_respected() {
        let params = RandomSystemParams {
            num_tasks: 5,
            probability_levels: 4,
            ..Default::default()
        };
        let sys = random_system(&params, &mut Rng::seed_from(4));
        assert_eq!(sys.len(), 5);
        assert_eq!(sys[0].benefit().num_levels(), 5);
        assert_eq!(sys[0].benefit().points()[1].value, 0.25);
    }

    #[test]
    #[should_panic(expected = "invalid period range")]
    fn bad_params_panic() {
        let params = RandomSystemParams {
            period_range_ms: (700, 600),
            ..Default::default()
        };
        random_system(&params, &mut Rng::seed_from(0));
    }

    #[test]
    fn uunifast_sums_to_total() {
        let mut rng = Rng::seed_from(9);
        for n in [1usize, 2, 5, 30] {
            for total in [0.3, 0.8, 1.0, 2.5] {
                let utils = uunifast(n, total, &mut rng);
                assert_eq!(utils.len(), n);
                let sum: f64 = utils.iter().sum();
                assert!((sum - total).abs() < 1e-9, "n={n} total={total} sum={sum}");
                assert!(utils.iter().all(|&u| u >= 0.0));
            }
        }
    }

    #[test]
    fn uunifast_is_not_degenerate() {
        // Shares should vary, not collapse to total/n.
        let mut rng = Rng::seed_from(10);
        let utils = uunifast(10, 1.0, &mut rng);
        let max = utils.iter().cloned().fold(0.0, f64::max);
        let min = utils.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 2.0 * min, "suspiciously uniform shares: {utils:?}");
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn uunifast_zero_tasks_panics() {
        uunifast(0, 1.0, &mut Rng::seed_from(0));
    }

    #[test]
    fn uunifast_offloaded_system_valid_and_near_target() {
        let mut rng = Rng::seed_from(11);
        let sys = uunifast_offloaded_system(8, 0.7, &mut rng);
        assert_eq!(sys.len(), 8);
        let mut density = 0.0;
        for (task, r) in &sys {
            assert!(task.setup_wcet() + task.compensation_wcet() <= task.deadline());
            let slack = task.deadline() - *r;
            density += (task.setup_wcet() + task.compensation_wcet()).ratio(slack);
        }
        assert!((density - 0.7).abs() < 0.15, "density {density}");
    }
}
