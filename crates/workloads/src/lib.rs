//! # rto-workloads — case-study and synthetic workloads
//!
//! Everything the paper evaluates on, rebuilt:
//!
//! * [`imaging`] — a small grayscale image library: synthetic scene
//!   generation, bilinear scaling, MSE/PSNR. The case study's benefit
//!   values are PSNR-vs-scaling-level curves; this module lets the repo
//!   *re-derive* such curves from first principles instead of only
//!   replaying Table 1.
//! * [`vision`] — the four §6.1 kernels in miniature: stereo disparity
//!   (block matching), Sobel edge detection, Harris-corner object
//!   recognition proxy, and frame-difference motion detection.
//! * [`case_study`] — the §6.1 system: the exact Table 1 dataset, the
//!   four sporadic tasks (deadlines 1.8 s / 2 s), importance weights 1–4
//!   and their 24 permutations, and ready-made [`rto_core::odm::OdmTask`]
//!   bundles.
//! * [`random`] — the §6.2 generator: 30 tasks with `C_{i,1}, C_i ~
//!   U(0, 20] ms`, `C_{i,2} = C_i`, `D_i = T_i ~ U{600…700} ms`, and
//!   probabilistic benefit functions with levels 10 %…100 % at increasing
//!   response times in `[100, 200] ms`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case_study;
pub mod imaging;
pub mod random;
pub mod sift;
pub mod vision;

pub use case_study::{case_study_system, table1, weight_permutations};
pub use imaging::Image;
pub use random::{random_system, uunifast, RandomSystemParams};
