//! The §6.1 robot-vision case study.
//!
//! Four sporadic image-processing tasks process camera frames; each can
//! run locally on a down-scaled image, or offload a larger image to the
//! GPU server and keep the scaled-down version as compensation. Table 1
//! gives the measured benefit functions (PSNR per scaling level, with the
//! measured response time for each level); this module embeds that exact
//! dataset.
//!
//! The paper does not publish the tasks' WCETs, so this module fixes a
//! documented, feasibility-preserving choice (`Σ C_i/T_i ≈ 0.84 < 1`, as
//! §6.1.3 requires for the all-local fallback) and per-level setup costs
//! that grow with image size (the §5.2 `C^j_{i,1}` extension the paper
//! says its case study uses).

use rto_core::benefit::{BenefitFunction, BenefitPoint};
use rto_core::odm::OdmTask;
use rto_core::task::Task;
use rto_core::time::Duration;
use rto_server::gpu::OffloadRequest;

/// Number of case-study tasks.
pub const NUM_TASKS: usize = 4;

/// The image-scaling factor of each benefit level (level 0 = local
/// execution on the smallest usable image; level 4 = the original size,
/// whose PSNR Table 1 caps at 99 dB).
pub const SCALE_FACTORS: [f64; 5] = [0.25, 0.5, 0.65, 0.8, 1.0];

/// The camera frame is 300×200 (the §1 motivation example's size).
pub const FRAME_WIDTH: usize = 300;
/// See [`FRAME_WIDTH`].
pub const FRAME_HEIGHT: usize = 200;

/// Task names, in Table 1 order.
pub const TASK_NAMES: [&str; 4] = [
    "stereo-vision",
    "edge-detection",
    "object-recognition",
    "motion-detection",
];

/// Table 1, verbatim: per task, `G_i(0)` then `(r_{i,j} ms, G_i(r_{i,j}))`
/// for `j = 2..5`.
const TABLE1: [(f64, [(f64, f64); 4]); 4] = [
    (
        22.4897,
        [
            (195.2814, 30.5918),
            (207.4508, 33.2853),
            (222.2878, 36.6047),
            (236.502, 99.0),
        ],
    ),
    (
        28.1574,
        [
            (253.3242, 35.0431),
            (312.4523, 37.7277),
            (362.4235, 41.4977),
            (420.341, 99.0),
        ],
    ),
    (
        23.9059,
        [
            (148.2351, 28.5648),
            (161.4224, 31.9884),
            (174.3242, 35.3082),
            (188.803, 99.0),
        ],
    ),
    (
        21.0324,
        [
            (343.637, 28.3015),
            (485.459, 32.957),
            (622.091, 36.1414),
            (891.36, 99.0),
        ],
    ),
];

/// Our documented WCET choices (ms): local `C_i`; compensation
/// `C_{i,2} = C_i` (re-run the local version, as §3 suggests); per-level
/// setup `C^j_{i,1}` growing with image size.
const LOCAL_WCET_MS: [u64; 4] = [450, 300, 500, 350];
const SETUP_WCET_MS: [[u64; 4]; 4] = [
    [20, 25, 30, 40],
    [15, 20, 25, 35],
    [12, 16, 20, 28],
    [15, 22, 30, 45],
];

/// Relative GPU cost of each task's kernel at full frame size
/// (multiplied by the scale factor squared for smaller levels).
const COMPUTE_SCALE: [f64; 4] = [3.0, 4.0, 2.5, 8.0];

/// Deadlines: 1.8 s for τ1/τ2, 2 s for τ3/τ4 (§6.1.3), implicit
/// (`D_i = T_i`).
const DEADLINE_MS: [u64; 4] = [1800, 1800, 2000, 2000];

/// The Table 1 benefit functions (with per-level setup costs attached),
/// in task order.
pub fn table1() -> Vec<BenefitFunction> {
    (0..NUM_TASKS)
        .map(|i| {
            let (local, levels) = TABLE1[i];
            let mut points = vec![BenefitPoint::new(Duration::ZERO, local)];
            for (j, &(r_ms, value)) in levels.iter().enumerate() {
                points.push(BenefitPoint::with_costs(
                    Duration::from_ms_f64_clamped(r_ms),
                    value,
                    Duration::from_ms(SETUP_WCET_MS[i][j]),
                    Duration::from_ms(LOCAL_WCET_MS[i]),
                ));
            }
            // lint: allow(L3): Table 1 constants are compile-time data validated by unit tests
            BenefitFunction::new(points).expect("Table 1 data satisfies the invariants")
        })
        .collect()
}

/// The four case-study tasks.
pub fn case_study_tasks() -> Vec<Task> {
    (0..NUM_TASKS)
        .map(|i| {
            Task::builder(i, TASK_NAMES[i])
                .local_wcet(Duration::from_ms(LOCAL_WCET_MS[i]))
                .setup_wcet(Duration::from_ms(SETUP_WCET_MS[i][0]))
                .compensation_wcet(Duration::from_ms(LOCAL_WCET_MS[i]))
                .period(Duration::from_ms(DEADLINE_MS[i]))
                .build()
                // lint: allow(L3): case-study constants are compile-time data validated by unit tests
                .expect("case-study constants are valid")
        })
        .collect()
}

/// The complete ODM input for one weight assignment (importance weights
/// in task order, e.g. one of [`weight_permutations`]).
pub fn case_study_system(weights: [f64; 4]) -> Vec<OdmTask> {
    case_study_tasks()
        .into_iter()
        .zip(table1())
        .zip(weights)
        .map(|((task, benefit), w)| OdmTask::new(task, benefit).with_weight(w))
        .collect()
}

/// The 24 permutations of the importance weights (1, 2, 3, 4) — the
/// x-axis ("work set") of Figure 2.
pub fn weight_permutations() -> Vec<[f64; 4]> {
    let mut out = Vec::with_capacity(24);
    let vals = [1.0, 2.0, 3.0, 4.0];
    for a in 0..4 {
        for b in 0..4 {
            if b == a {
                continue;
            }
            for c in 0..4 {
                if c == a || c == b {
                    continue;
                }
                let d = 6 - a - b - c;
                out.push([vals[a], vals[b], vals[c], vals[d]]);
            }
        }
    }
    out
}

/// The uplink payload of task `task` at benefit level `level`: the raw
/// scaled frame.
pub fn level_payload_bytes(level: usize) -> u64 {
    let f = SCALE_FACTORS[level.min(SCALE_FACTORS.len() - 1)];
    ((FRAME_WIDTH as f64 * f) * (FRAME_HEIGHT as f64 * f)).clamp(0.0, u64::MAX as f64) as u64
}

/// The request shaper for the case study: payload grows with the scaling
/// level, compute cost grows with pixels and the task's kernel weight.
pub fn shape_request(task: &Task, level: usize) -> OffloadRequest {
    let f = SCALE_FACTORS[level.min(SCALE_FACTORS.len() - 1)];
    let kernel = COMPUTE_SCALE[task.id().0.min(NUM_TASKS - 1)];
    OffloadRequest::new(task.id().0)
        .with_payload_bytes(level_payload_bytes(level))
        .with_response_bytes(4 * 1024)
        .with_compute_scale(kernel * f * f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rto_core::analysis::local_only_test;

    #[test]
    fn table1_matches_paper_values() {
        let t = table1();
        assert_eq!(t.len(), 4);
        // Spot checks against the published numbers.
        assert_eq!(t[0].local_value(), 22.4897);
        assert_eq!(
            t[0].points()[1].response_time,
            Duration::from_ms_f64(195.2814).unwrap()
        );
        assert_eq!(t[0].points()[1].value, 30.5918);
        assert_eq!(
            t[3].points()[4].response_time,
            Duration::from_ms_f64(891.36).unwrap()
        );
        assert_eq!(t[3].points()[4].value, 99.0);
        assert_eq!(t[2].points()[2].value, 31.9884);
        for g in &t {
            assert_eq!(g.num_levels(), 5);
        }
    }

    #[test]
    fn per_level_costs_attached() {
        let t = table1();
        let p = t[1].points()[3];
        assert_eq!(p.setup_wcet, Some(Duration::from_ms(25)));
        assert_eq!(p.compensation_wcet, Some(Duration::from_ms(300)));
    }

    #[test]
    fn tasks_are_locally_feasible() {
        let tasks = case_study_tasks();
        let result = local_only_test(tasks.iter());
        assert!(result.schedulable, "local utilization {}", result.load);
        assert!(
            result.load > 0.7,
            "should be a loaded system: {}",
            result.load
        );
        assert_eq!(tasks[0].deadline(), Duration::from_ms(1800));
        assert_eq!(tasks[2].deadline(), Duration::from_ms(2000));
    }

    #[test]
    fn weight_permutations_are_all_24() {
        let perms = weight_permutations();
        assert_eq!(perms.len(), 24);
        let mut unique: Vec<_> = perms.iter().map(|p| p.map(|v| v as u64)).collect();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 24);
        for p in &perms {
            let mut sorted = *p;
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(sorted, [1.0, 2.0, 3.0, 4.0]);
        }
    }

    #[test]
    fn system_carries_weights() {
        let sys = case_study_system([4.0, 3.0, 2.0, 1.0]);
        assert_eq!(sys.len(), 4);
        assert_eq!(sys[0].weight(), 4.0);
        assert_eq!(sys[3].weight(), 1.0);
        assert_eq!(sys[1].task().name(), "edge-detection");
    }

    #[test]
    fn payloads_grow_with_level() {
        let sizes: Vec<u64> = (0..5).map(level_payload_bytes).collect();
        for w in sizes.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(sizes[4], (FRAME_WIDTH * FRAME_HEIGHT) as u64);
    }

    #[test]
    fn request_shape_scales_compute() {
        let tasks = case_study_tasks();
        let small = shape_request(&tasks[0], 1);
        let big = shape_request(&tasks[0], 4);
        assert!(small.compute_scale < big.compute_scale);
        assert!(small.payload_bytes < big.payload_bytes);
        assert_eq!(big.compute_scale, 3.0);
    }
}
