//! A miniature SIFT-style keypoint detector — the paper's motivating
//! workload (§1: "a mobile robot commonly uses the Scale-Invariant
//! Feature Transform (SIFT) algorithm for object recognition").
//!
//! This is the real detector front end in small form:
//!
//! 1. build a **Gaussian pyramid** (per-octave blur stacks, downsample
//!    between octaves);
//! 2. take **difference-of-Gaussians** (DoG) between adjacent scales;
//! 3. find spatial extrema (3×3 neighbourhood, plateau-tolerant) above a
//!    contrast threshold in every DoG layer, then keep the strongest
//!    response per image location across scales (scale selection by
//!    dedup — a pragmatic stand-in for full 3×3×3 scale-space extrema,
//!    which need many more DoG layers to fire reliably);
//! 4. attach a dominant **gradient orientation** to each keypoint.
//!
//! Descriptor extraction and matching are out of scope — keypoint count
//! and strength already capture the quality-vs-image-size trade-off the
//! case study exploits, and the detector is heavy enough to make the
//! CPU-vs-GPU gap of the motivation example tangible.

use crate::imaging::Image;

/// A detected scale-space keypoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Keypoint {
    /// X coordinate in the original image's pixel space.
    pub x: f64,
    /// Y coordinate in the original image's pixel space.
    pub y: f64,
    /// Octave index (0 = full resolution).
    pub octave: usize,
    /// Scale index within the octave.
    pub scale: usize,
    /// |DoG| response at the extremum (contrast).
    pub response: f64,
    /// Dominant gradient orientation in radians, `[-π, π]`.
    pub orientation: f64,
}

/// Detector parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiftParams {
    /// Number of octaves (each halves the resolution).
    pub octaves: usize,
    /// Gaussian scales per octave (DoG layers = scales − 1).
    pub scales_per_octave: usize,
    /// Base blur sigma.
    pub sigma: f64,
    /// Minimum |DoG| response to keep an extremum (0–255 scale).
    pub contrast_threshold: f64,
}

impl Default for SiftParams {
    fn default() -> Self {
        SiftParams {
            octaves: 3,
            scales_per_octave: 4,
            sigma: 1.6,
            contrast_threshold: 4.0,
        }
    }
}

/// A grayscale image as `f64` values (intermediate pyramid layers).
#[derive(Debug, Clone)]
struct Layer {
    width: usize,
    height: usize,
    data: Vec<f64>,
}

impl Layer {
    fn from_image(img: &Image) -> Layer {
        Layer {
            width: img.width(),
            height: img.height(),
            data: img.pixels().iter().map(|&p| p as f64).collect(),
        }
    }

    #[inline]
    fn get(&self, x: usize, y: usize) -> f64 {
        self.data[y * self.width + x]
    }

    /// Separable Gaussian blur.
    fn blur(&self, sigma: f64) -> Layer {
        let radius = (3.0 * sigma).ceil().clamp(0.0, 255.0) as usize;
        let kernel: Vec<f64> = (0..=2 * radius)
            .map(|k| {
                let d = k as f64 - radius as f64;
                (-(d * d) / (2.0 * sigma * sigma)).exp()
            })
            .collect();
        let norm: f64 = kernel.iter().sum();

        // Horizontal pass. `(x + i).saturating_sub(radius)` is the
        // edge-clamped tap position `x + i - radius`, pinned to the image.
        let mut tmp = vec![0.0; self.data.len()];
        for y in 0..self.height {
            for x in 0..self.width {
                let mut acc = 0.0;
                for (i, w) in kernel.iter().enumerate() {
                    let sx = (x + i).saturating_sub(radius).min(self.width - 1);
                    acc += w * self.get(sx, y);
                }
                tmp[y * self.width + x] = acc / norm;
            }
        }
        // Vertical pass.
        let mut out = vec![0.0; self.data.len()];
        for y in 0..self.height {
            for x in 0..self.width {
                let mut acc = 0.0;
                for (i, w) in kernel.iter().enumerate() {
                    let sy = (y + i).saturating_sub(radius).min(self.height - 1);
                    acc += w * tmp[sy * self.width + x];
                }
                out[y * self.width + x] = acc / norm;
            }
        }
        Layer {
            width: self.width,
            height: self.height,
            data: out,
        }
    }

    /// 2× downsample (pick every second pixel).
    fn half(&self) -> Layer {
        let w = (self.width / 2).max(1);
        let h = (self.height / 2).max(1);
        let mut data = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                data.push(self.get(x * 2, y * 2));
            }
        }
        Layer {
            width: w,
            height: h,
            data,
        }
    }

    fn diff(&self, other: &Layer) -> Layer {
        debug_assert_eq!(self.data.len(), other.data.len());
        Layer {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

/// Runs the detector; keypoints are returned strongest-first.
pub fn detect_keypoints(img: &Image, params: &SiftParams) -> Vec<Keypoint> {
    let mut keypoints = Vec::new();
    let mut base = Layer::from_image(img);
    let k = 2f64.powf(1.0 / (params.scales_per_octave.max(2) - 1) as f64);

    for octave in 0..params.octaves {
        if base.width < 8 || base.height < 8 {
            break;
        }
        // Gaussian stack for this octave.
        let mut gaussians = Vec::with_capacity(params.scales_per_octave);
        let mut sigma = params.sigma;
        gaussians.push(base.blur(sigma));
        for _ in 1..params.scales_per_octave {
            sigma *= k;
            gaussians.push(base.blur(sigma));
        }
        // DoG stack.
        let dogs: Vec<Layer> = gaussians.windows(2).map(|w| w[1].diff(&w[0])).collect();
        // Spatial extrema in every DoG layer.
        let zoom = (1 << octave) as f64;
        for (s, cur) in dogs.iter().enumerate() {
            for y in 1..cur.height - 1 {
                for x in 1..cur.width - 1 {
                    let v = cur.get(x, y);
                    if v.abs() < params.contrast_threshold {
                        continue;
                    }
                    // Plateau-tolerant extremum: perfectly symmetric
                    // imagery (checkerboards, synthetic targets) produces
                    // exact ties between mirror neighbours, which a
                    // strict test would reject wholesale. Flat plateaus
                    // are already gone via the contrast threshold.
                    let mut is_max = true;
                    let mut is_min = true;
                    'scan: for dy in -1isize..=1 {
                        for dx in -1isize..=1 {
                            if dx == 0 && dy == 0 {
                                continue;
                            }
                            let n = cur.get(x.wrapping_add_signed(dx), y.wrapping_add_signed(dy));
                            if n > v {
                                is_max = false;
                            }
                            if n < v {
                                is_min = false;
                            }
                            if !is_max && !is_min {
                                break 'scan;
                            }
                        }
                    }
                    if is_max || is_min {
                        // Dominant gradient orientation on the Gaussian
                        // at this scale.
                        let g = &gaussians[s];
                        let gx = g.get(x + 1, y) - g.get(x - 1, y);
                        let gy = g.get(x, y + 1) - g.get(x, y - 1);
                        keypoints.push(Keypoint {
                            x: x as f64 * zoom,
                            y: y as f64 * zoom,
                            octave,
                            scale: s,
                            response: v.abs(),
                            orientation: gy.atan2(gx),
                        });
                    }
                }
            }
        }
        base = base.half();
    }
    // Scale selection by dedup: keep the strongest response per 4×4
    // original-image bucket.
    keypoints.sort_by(|a, b| b.response.total_cmp(&a.response));
    let mut seen = std::collections::HashSet::new();
    keypoints.retain(|kp| {
        seen.insert((
            kp.x.clamp(0.0, u64::MAX as f64) as u64 / 4,
            kp.y.clamp(0.0, u64::MAX as f64) as u64 / 4,
        ))
    });
    keypoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imaging::synthetic_scene;
    use rto_stats::Rng;

    fn scene(seed: u64) -> Image {
        synthetic_scene(128, 96, &mut Rng::seed_from(seed))
    }

    /// A checkerboard: dense scale-space texture (every tile corner is a
    /// DoG extremum), unlike the smooth blob scenes.
    fn checkerboard(width: usize, height: usize, tile: usize) -> Image {
        let mut img = Image::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let v = if (x / tile + y / tile).is_multiple_of(2) {
                    40
                } else {
                    200
                };
                img.set(x, y, v);
            }
        }
        img
    }

    #[test]
    fn flat_image_has_no_keypoints() {
        let img = Image::new(64, 64);
        let kps = detect_keypoints(&img, &SiftParams::default());
        assert!(kps.is_empty());
    }

    #[test]
    fn textured_image_yields_many_keypoints() {
        let kps = detect_keypoints(&checkerboard(128, 96, 8), &SiftParams::default());
        assert!(kps.len() > 30, "only {} keypoints", kps.len());
        // Strongest first.
        for w in kps.windows(2) {
            assert!(w[0].response >= w[1].response);
        }
        // Coordinates map back into the original frame.
        for kp in &kps {
            assert!(kp.x < 128.0 && kp.y < 96.0);
            assert!(kp.orientation.abs() <= std::f64::consts::PI + 1e-9);
        }
    }

    #[test]
    fn smooth_scene_yields_blob_scale_keypoints() {
        // Smooth synthetic scenes contain only blob-scale structure; the
        // detector should find tens of keypoints, not the hundreds a
        // checkerboard produces.
        let kps = detect_keypoints(&scene(1), &SiftParams::default());
        assert!(!kps.is_empty());
        assert!(kps.len() < 120, "{} keypoints on a smooth scene", kps.len());
    }

    #[test]
    fn blob_center_is_detected() {
        // One bright blob: its scale-space extremum should land near the
        // center.
        let mut img = Image::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                let dx = x as f64 - 32.0;
                let dy = y as f64 - 32.0;
                let v = 220.0 * (-(dx * dx + dy * dy) / 50.0).exp();
                img.set(x, y, v as u8);
            }
        }
        let kps = detect_keypoints(&img, &SiftParams::default());
        assert!(!kps.is_empty());
        let best = kps[0];
        assert!(
            (best.x - 32.0).abs() < 6.0 && (best.y - 32.0).abs() < 6.0,
            "best keypoint at ({}, {})",
            best.x,
            best.y
        );
    }

    #[test]
    fn degraded_images_lose_feature_strength() {
        // The case-study premise, now for the paper's own SIFT workload:
        // scaling smears the tile corners, collapsing the total feature
        // response mass monotonically with the scale factor.
        let img = checkerboard(128, 96, 8);
        let mass = |f: f64| {
            detect_keypoints(&img.degrade(f), &SiftParams::default())
                .iter()
                .map(|k| k.response)
                .sum::<f64>()
        };
        let masses: Vec<f64> = [1.0, 0.5, 0.25, 0.125].iter().map(|&f| mass(f)).collect();
        for w in masses.windows(2) {
            assert!(w[1] < w[0], "response mass not monotone: {masses:?}");
        }
        assert!(
            masses[3] < 0.6 * masses[0],
            "eighth-scale mass {:.0} should be well below full {:.0}",
            masses[3],
            masses[0]
        );
        // The strongest surviving feature is also markedly weaker.
        let full = detect_keypoints(&img, &SiftParams::default());
        let degraded = detect_keypoints(&img.degrade(0.125), &SiftParams::default());
        assert!(degraded[0].response < 0.8 * full[0].response);
    }

    #[test]
    fn higher_threshold_fewer_keypoints() {
        let img = checkerboard(128, 96, 8);
        let loose = detect_keypoints(
            &img,
            &SiftParams {
                contrast_threshold: 2.0,
                ..Default::default()
            },
        )
        .len();
        let strict = detect_keypoints(
            &img,
            &SiftParams {
                contrast_threshold: 20.0,
                ..Default::default()
            },
        )
        .len();
        assert!(strict < loose);
    }

    #[test]
    fn deterministic() {
        let img = scene(4);
        let a = detect_keypoints(&img, &SiftParams::default());
        let b = detect_keypoints(&img, &SiftParams::default());
        assert_eq!(a, b);
    }
}
