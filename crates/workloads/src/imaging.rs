//! A small grayscale image library: synthetic scenes, bilinear scaling,
//! MSE/PSNR.
//!
//! The case study trades image *scaling level* against schedulability:
//! smaller images are cheaper to process locally and to transmit, but
//! lose information. Quality is quantified as the PSNR between the
//! original image and the down-scaled-then-up-scaled one — exactly the
//! quantity Table 1 reports per level.

use rto_stats::Rng;

/// An 8-bit grayscale image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl Image {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image {
            width,
            height,
            pixels: vec![0; width * height],
        }
    }

    /// Creates an image from raw pixels (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or a dimension is zero.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        assert_eq!(pixels.len(), width * height, "pixel count mismatch");
        Image {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw row-major pixels.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x] = v;
    }

    /// Size in bytes when transmitted raw (the payload model for the
    /// offload request).
    pub fn payload_bytes(&self) -> u64 {
        u64::try_from(self.pixels.len()).unwrap_or(u64::MAX)
    }

    /// Bilinearly resizes to `(new_width, new_height)`.
    ///
    /// # Panics
    ///
    /// Panics if either target dimension is zero.
    pub fn resize(&self, new_width: usize, new_height: usize) -> Image {
        assert!(
            new_width > 0 && new_height > 0,
            "target dimensions must be positive"
        );
        let mut out = Image::new(new_width, new_height);
        let sx = self.width as f64 / new_width as f64;
        let sy = self.height as f64 / new_height as f64;
        for y in 0..new_height {
            for x in 0..new_width {
                // Sample at the source-space center of the target pixel.
                let fx = ((x as f64 + 0.5) * sx - 0.5).clamp(0.0, (self.width - 1) as f64);
                let fy = ((y as f64 + 0.5) * sy - 0.5).clamp(0.0, (self.height - 1) as f64);
                let x0 = fx.floor().clamp(0.0, u64::MAX as f64) as usize;
                let y0 = fy.floor().clamp(0.0, u64::MAX as f64) as usize;
                let x1 = x0.saturating_add(1).min(self.width - 1);
                let y1 = y0.saturating_add(1).min(self.height - 1);
                let dx = fx - x0 as f64;
                let dy = fy - y0 as f64;
                let top = self.get(x0, y0) as f64 * (1.0 - dx) + self.get(x1, y0) as f64 * dx;
                let bottom = self.get(x0, y1) as f64 * (1.0 - dx) + self.get(x1, y1) as f64 * dx;
                let v = top * (1.0 - dy) + bottom * dy;
                out.set(x, y, v.round().clamp(0.0, 255.0) as u8);
            }
        }
        out
    }

    /// Scales by a factor in `(0, 1]` and back up, returning the
    /// quality-degraded image at the original size — the case study's
    /// "scaling level" operation.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn degrade(&self, factor: f64) -> Image {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        let w = ((self.width as f64 * factor)
            .round()
            .clamp(0.0, u64::MAX as f64) as usize)
            .max(1);
        let h = ((self.height as f64 * factor)
            .round()
            .clamp(0.0, u64::MAX as f64) as usize)
            .max(1);
        if w == self.width && h == self.height {
            return self.clone();
        }
        self.resize(w, h).resize(self.width, self.height)
    }

    /// Shifts the image content `dx` pixels to the right (used to
    /// synthesize stereo pairs and motion frames); vacated pixels repeat
    /// the edge column.
    pub fn shift_right(&self, dx: usize) -> Image {
        let mut out = Image::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let src_x = x.saturating_sub(dx);
                out.set(x, y, self.get(src_x, y));
            }
        }
        out
    }

    /// Shifts the image content `dx` pixels to the left — what the right
    /// camera of a stereo pair sees for objects at disparity `dx`;
    /// vacated pixels repeat the edge column.
    pub fn shift_left(&self, dx: usize) -> Image {
        let mut out = Image::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let src_x = (x + dx).min(self.width - 1);
                out.set(x, y, self.get(src_x, y));
            }
        }
        out
    }
}

/// Mean squared error between two same-sized images.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn mse(a: &Image, b: &Image) -> f64 {
    assert_eq!(
        (a.width, a.height),
        (b.width, b.height),
        "MSE of differently-sized images"
    );
    let sum: f64 = a
        .pixels
        .iter()
        .zip(&b.pixels)
        .map(|(&p, &q)| {
            let d = p as f64 - q as f64;
            d * d
        })
        .sum();
    sum / a.pixels.len() as f64
}

/// Peak signal-to-noise ratio between two same-sized 8-bit images, in dB.
///
/// Identical images yield the conventional cap of 99 dB — the same
/// sentinel Table 1 prints for the lossless level.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn psnr(reference: &Image, candidate: &Image) -> f64 {
    let e = mse(reference, candidate);
    // MSE is non-negative; ordered comparison avoids f64 equality.
    if e <= 0.0 {
        return 99.0;
    }
    let p = 10.0 * (255.0f64 * 255.0 / e).log10();
    p.min(99.0)
}

/// Generates a synthetic textured scene: smooth gradient background,
/// random bright elliptical blobs, and mild pixel noise. Deterministic
/// given the RNG state.
pub fn synthetic_scene(width: usize, height: usize, rng: &mut Rng) -> Image {
    let mut img = Image::new(width, height);
    // Gradient background.
    for y in 0..height {
        for x in 0..width {
            let g = 40.0 + 80.0 * (x as f64 / width as f64) + 40.0 * (y as f64 / height as f64);
            img.set(x, y, g.clamp(0.0, 255.0) as u8);
        }
    }
    // Blobs: foreground structure that scaling degrades.
    let blobs = 6 + rng.usize_below(6);
    for _ in 0..blobs {
        let cx = rng.usize_below(width) as f64;
        let cy = rng.usize_below(height) as f64;
        let rx = 4.0 + rng.f64() * (width as f64 / 8.0);
        let ry = 4.0 + rng.f64() * (height as f64 / 8.0);
        let brightness = 120.0 + rng.f64() * 135.0;
        for y in 0..height {
            for x in 0..width {
                let nx = (x as f64 - cx) / rx;
                let ny = (y as f64 - cy) / ry;
                let d2 = nx * nx + ny * ny;
                if d2 < 1.0 {
                    let v = img.get(x, y) as f64;
                    let blended = v + (brightness - v) * (1.0 - d2);
                    img.set(x, y, blended.clamp(0.0, 255.0) as u8);
                }
            }
        }
    }
    // Mild sensor noise.
    for p in &mut img.pixels {
        let noise = (rng.f64() - 0.5) * 12.0;
        *p = (*p as f64 + noise).clamp(0.0, 255.0) as u8;
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene(seed: u64) -> Image {
        synthetic_scene(120, 90, &mut Rng::seed_from(seed))
    }

    #[test]
    fn construction_and_access() {
        let mut img = Image::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.payload_bytes(), 12);
        img.set(2, 1, 200);
        assert_eq!(img.get(2, 1), 200);
        let raw = Image::from_pixels(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(raw.get(1, 1), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Image::new(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "pixel count mismatch")]
    fn from_pixels_validates() {
        Image::from_pixels(2, 2, vec![0; 3]);
    }

    #[test]
    fn resize_identity_roundtrip() {
        let img = scene(1);
        let same = img.resize(img.width(), img.height());
        // Identity resize: bilinear at pixel centers reproduces pixels.
        assert_eq!(img, same);
    }

    #[test]
    fn degrade_full_factor_is_identity() {
        let img = scene(2);
        assert_eq!(img.degrade(1.0), img);
    }

    #[test]
    fn psnr_monotone_in_scale_factor() {
        // The crux of the case study: smaller scale ⇒ lower PSNR.
        let img = scene(3);
        let factors = [0.2, 0.4, 0.6, 0.8, 1.0];
        let psnrs: Vec<f64> = factors
            .iter()
            .map(|&f| psnr(&img, &img.degrade(f)))
            .collect();
        for w in psnrs.windows(2) {
            assert!(
                w[0] < w[1] + 1e-9,
                "PSNR not monotone: {psnrs:?} for {factors:?}"
            );
        }
        assert_eq!(*psnrs.last().unwrap(), 99.0); // lossless sentinel
        assert!(
            psnrs[0] > 10.0 && psnrs[0] < 45.0,
            "degraded PSNR {}",
            psnrs[0]
        );
    }

    #[test]
    fn mse_zero_for_identical() {
        let img = scene(4);
        assert_eq!(mse(&img, &img), 0.0);
        assert_eq!(psnr(&img, &img), 99.0);
    }

    #[test]
    #[should_panic(expected = "differently-sized")]
    fn mse_size_mismatch_panics() {
        mse(&Image::new(2, 2), &Image::new(3, 2));
    }

    #[test]
    fn shift_right_moves_content() {
        let mut img = Image::new(5, 1);
        img.set(0, 0, 100);
        let shifted = img.shift_right(2);
        assert_eq!(shifted.get(2, 0), 100);
        assert_eq!(shifted.get(0, 0), 100); // edge repeat
        assert_eq!(shifted.get(4, 0), 0);
    }

    #[test]
    fn scenes_are_deterministic_and_textured() {
        let a = scene(7);
        let b = scene(7);
        assert_eq!(a, b);
        let c = scene(8);
        assert_ne!(a, c);
        // Texture check: not flat.
        let min = a.pixels().iter().min().unwrap();
        let max = a.pixels().iter().max().unwrap();
        assert!(max - min > 50, "scene too flat: {min}..{max}");
    }
}
