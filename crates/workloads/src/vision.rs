//! Miniature implementations of the four case-study kernels (§6.1):
//! stereo vision, edge detection, object recognition, motion detection.
//!
//! These are real (small) algorithms, not stubs: the Table-1-style
//! regeneration bench runs them on synthetic scenes at several scaling
//! levels to measure how output quality degrades with scale — the same
//! experiment the paper ran on its robot.

use crate::imaging::Image;

/// Sobel edge detection: returns the gradient-magnitude image.
pub fn sobel_edges(img: &Image) -> Image {
    let (w, h) = (img.width(), img.height());
    let mut out = Image::new(w, h);
    if w < 3 || h < 3 {
        return out;
    }
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let p = |dx: isize, dy: isize| {
                f64::from(img.get(x.wrapping_add_signed(dx), y.wrapping_add_signed(dy)))
            };
            let gx = -p(-1, -1) - 2.0 * p(-1, 0) - p(-1, 1) + p(1, -1) + 2.0 * p(1, 0) + p(1, 1);
            let gy = -p(-1, -1) - 2.0 * p(0, -1) - p(1, -1) + p(-1, 1) + 2.0 * p(0, 1) + p(1, 1);
            let mag = (gx * gx + gy * gy).sqrt().clamp(0.0, 255.0);
            out.set(x, y, mag as u8);
        }
    }
    out
}

/// Block-matching stereo: estimates per-block horizontal disparity
/// between a left and right image. Returns the disparity map (one value
/// per `block`-sized tile, row-major) and its dimensions.
///
/// # Panics
///
/// Panics if the images differ in size, or `block` or `max_disparity`
/// is zero.
pub fn stereo_disparity(
    left: &Image,
    right: &Image,
    block: usize,
    max_disparity: usize,
) -> (Vec<u8>, usize, usize) {
    assert_eq!(
        (left.width(), left.height()),
        (right.width(), right.height()),
        "stereo pair size mismatch"
    );
    assert!(
        block > 0 && max_disparity > 0,
        "parameters must be positive"
    );
    let bw = left.width() / block;
    let bh = left.height() / block;
    let mut disparities = Vec::with_capacity(bw * bh);
    for by in 0..bh {
        for bx in 0..bw {
            let x0 = bx * block;
            let y0 = by * block;
            let mut best = (u64::MAX, 0usize);
            for d in 0..=max_disparity.min(x0) {
                // Sum of absolute differences between the left block and
                // the right block shifted left by d.
                let mut sad = 0u64;
                for y in y0..y0 + block {
                    for x in x0..x0 + block {
                        let l = i64::from(left.get(x, y));
                        let r = i64::from(right.get(x - d, y));
                        sad += l.abs_diff(r);
                    }
                }
                if sad < best.0 {
                    best = (sad, d);
                }
            }
            disparities.push(u8::try_from(best.1.min(255)).unwrap_or(255));
        }
    }
    (disparities, bw, bh)
}

/// A detected corner feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Pixel x coordinate.
    pub x: usize,
    /// Pixel y coordinate.
    pub y: usize,
    /// Harris corner response.
    pub response: f64,
}

/// Harris corner detection — the object-recognition proxy (feature
/// extraction is the core of SIFT-style recognition pipelines).
///
/// Returns corners above `threshold` after 3×3 non-maximum suppression,
/// strongest first.
pub fn harris_corners(img: &Image, threshold: f64) -> Vec<Corner> {
    let (w, h) = (img.width(), img.height());
    if w < 3 || h < 3 {
        return Vec::new();
    }
    // Gradients.
    let mut ix = vec![0.0f64; w * h];
    let mut iy = vec![0.0f64; w * h];
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            ix[y * w + x] = (img.get(x + 1, y) as f64 - img.get(x - 1, y) as f64) / 2.0;
            iy[y * w + x] = (img.get(x, y + 1) as f64 - img.get(x, y - 1) as f64) / 2.0;
        }
    }
    // Harris response with a 3×3 structure-tensor window.
    let k = 0.04;
    let mut response = vec![0.0f64; w * h];
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let (mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0);
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let idx = y.wrapping_add_signed(dy) * w + x.wrapping_add_signed(dx);
                    sxx += ix[idx] * ix[idx];
                    syy += iy[idx] * iy[idx];
                    sxy += ix[idx] * iy[idx];
                }
            }
            let det = sxx * syy - sxy * sxy;
            let trace = sxx + syy;
            response[y * w + x] = det - k * trace * trace;
        }
    }
    // Non-maximum suppression and thresholding.
    let mut corners = Vec::new();
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let r = response[y * w + x];
            if r < threshold {
                continue;
            }
            let is_max = (-1isize..=1).all(|dy| {
                (-1isize..=1).all(|dx| {
                    (dx == 0 && dy == 0)
                        || r >= response[y.wrapping_add_signed(dy) * w + x.wrapping_add_signed(dx)]
                })
            });
            if is_max {
                corners.push(Corner { x, y, response: r });
            }
        }
    }
    corners.sort_by(|a, b| b.response.total_cmp(&a.response));
    corners
}

/// Frame-difference motion detection: fraction of pixels whose absolute
/// difference between frames exceeds `threshold`, plus the binary motion
/// mask.
///
/// # Panics
///
/// Panics if the frames differ in size.
pub fn motion_detect(prev: &Image, cur: &Image, threshold: u8) -> (f64, Image) {
    assert_eq!(
        (prev.width(), prev.height()),
        (cur.width(), cur.height()),
        "frame size mismatch"
    );
    let mut mask = Image::new(prev.width(), prev.height());
    let mut moving = 0usize;
    for y in 0..prev.height() {
        for x in 0..prev.width() {
            let d = prev.get(x, y).abs_diff(cur.get(x, y));
            if d > threshold {
                mask.set(x, y, 255);
                moving += 1;
            }
        }
    }
    (moving as f64 / (prev.width() * prev.height()) as f64, mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imaging::synthetic_scene;
    use rto_stats::Rng;

    fn scene(seed: u64) -> Image {
        synthetic_scene(96, 72, &mut Rng::seed_from(seed))
    }

    #[test]
    fn sobel_finds_edges_of_a_square() {
        let mut img = Image::new(20, 20);
        for y in 5..15 {
            for x in 5..15 {
                img.set(x, y, 255);
            }
        }
        let edges = sobel_edges(&img);
        // Strong response at the boundary, none inside.
        assert!(edges.get(5, 10) > 100);
        assert!(edges.get(10, 10) == 0);
        assert!(edges.get(1, 1) == 0);
    }

    #[test]
    fn sobel_tiny_image_is_black() {
        let img = Image::new(2, 2);
        let edges = sobel_edges(&img);
        assert!(edges.pixels().iter().all(|&p| p == 0));
    }

    #[test]
    fn stereo_recovers_known_disparity() {
        let left = scene(1);
        // The right camera sees content shifted left by the disparity:
        // right[x] = left[x + 4], so the matcher (right[x - d] vs
        // left[x]) minimizes SAD at d = 4.
        let right = left.shift_left(4);
        let (disp, bw, bh) = stereo_disparity(&left, &right, 8, 8);
        assert_eq!(disp.len(), bw * bh);
        let hits = disp.iter().filter(|&&d| d == 4).count();
        assert!(
            hits * 2 > disp.len(),
            "only {hits}/{} blocks found the true disparity",
            disp.len()
        );
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn stereo_size_mismatch_panics() {
        stereo_disparity(&Image::new(10, 10), &Image::new(12, 10), 4, 4);
    }

    #[test]
    fn harris_finds_square_corners() {
        let mut img = Image::new(30, 30);
        for y in 10..20 {
            for x in 10..20 {
                img.set(x, y, 255);
            }
        }
        let corners = harris_corners(&img, 1000.0);
        assert!(!corners.is_empty());
        // Every detected corner is near one of the four square corners.
        for c in &corners {
            let near = [(10, 10), (19, 10), (10, 19), (19, 19)]
                .iter()
                .any(|&(cx, cy)| {
                    (c.x as isize - cx as isize).abs() <= 2
                        && (c.y as isize - cy as isize).abs() <= 2
                });
            assert!(near, "spurious corner at ({}, {})", c.x, c.y);
        }
    }

    #[test]
    fn harris_empty_on_flat_image() {
        let corners = harris_corners(&Image::new(30, 30), 100.0);
        assert!(corners.is_empty());
    }

    #[test]
    fn harris_degrades_with_scaling() {
        // The case-study rationale: feature extraction finds fewer/weaker
        // corners on degraded images.
        let img = scene(5);
        let full = harris_corners(&img, 5000.0).len();
        let degraded = harris_corners(&img.degrade(0.25), 5000.0).len();
        assert!(
            degraded < full,
            "degraded image should yield fewer corners: {degraded} vs {full}"
        );
    }

    #[test]
    fn motion_detect_quantifies_change() {
        let prev = scene(6);
        let (frac_none, _) = motion_detect(&prev, &prev, 10);
        assert_eq!(frac_none, 0.0);
        let cur = prev.shift_right(5);
        let (frac_moved, mask) = motion_detect(&prev, &cur, 10);
        assert!(frac_moved > 0.05, "motion fraction {frac_moved}");
        assert!(mask.pixels().contains(&255));
    }

    #[test]
    fn corners_sorted_by_response() {
        let img = scene(7);
        let corners = harris_corners(&img, 1000.0);
        for w in corners.windows(2) {
            assert!(w[0].response >= w[1].response);
        }
    }
}
