//! Multiple-Choice Knapsack Problem (MCKP) solvers.
//!
//! The Offloading Decision Manager of the DAC'14 paper reduces the task
//! selection problem (which tasks to offload, and with which estimated
//! worst-case response time) to an MCKP (§5.2, Eq. 5):
//!
//! ```text
//! max  Σ_i Σ_j x_{i,j} · G_i(r_{i,j})
//! s.t. Σ_i Σ_j x_{i,j} · w_{i,j} ≤ 1        (processor capacity, Thm. 3)
//!      Σ_j x_{i,j} = 1 for every task i      (exactly one choice per class)
//!      x_{i,j} ∈ {0, 1}
//! ```
//!
//! This crate implements the problem substrate and four solvers:
//!
//! * [`dp::DpSolver`] — the exact pseudo-polynomial dynamic program the
//!   paper adopts from Dudzinski & Walukiewicz (1987), over a discretized
//!   weight grid (weights are rounded **up**, so any returned selection is
//!   feasible for the true, real-valued capacity).
//! * [`heu::HeuOeSolver`] — the HEU-OE greedy/exchange heuristic from
//!   Khan's thesis (1998): LP-dominance pruning, efficiency-ordered
//!   upgrades, and an opportunistic-exchange improvement pass.
//! * [`branch_bound::BranchBoundSolver`] — exact branch-and-bound with an
//!   LP-relaxation bound; used to validate the DP and as a third option.
//! * [`brute::BruteForceSolver`] — exhaustive enumeration for tiny
//!   instances (testing oracle).
//! * [`fptas::FptasSolver`] — a profit-scaling FPTAS with a provable
//!   `(1 − ε)` guarantee, the accuracy/time knob the weight-grid DP
//!   lacks.
//!
//! All solvers implement the common [`Solver`] trait.
//!
//! # Example
//!
//! ```
//! use rto_mckp::{MckpInstance, Item, Solver};
//! use rto_mckp::dp::DpSolver;
//!
//! // Two classes; capacity 1.0.
//! let inst = MckpInstance::new(
//!     vec![
//!         vec![Item::new(0.2, 1.0), Item::new(0.6, 5.0)],
//!         vec![Item::new(0.3, 2.0), Item::new(0.7, 4.0)],
//!     ],
//!     1.0,
//! )?;
//! let sel = DpSolver::default().solve(&inst)?;
//! assert!(inst.selection_weight(&sel)? <= 1.0);
//! assert_eq!(inst.selection_profit(&sel)?, 7.0); // items (0.6,5) + (0.3,2)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch_bound;
pub mod brute;
pub mod dp;
pub mod error;
pub mod fptas;
pub mod heu;
pub mod instance;
pub mod lp;
pub mod observe;
pub mod solution;

pub use branch_bound::BranchBoundSolver;
pub use brute::BruteForceSolver;
pub use dp::DpSolver;
pub use error::SolveError;
pub use fptas::FptasSolver;
pub use heu::HeuOeSolver;
pub use instance::{Item, MckpInstance};
pub use observe::ObservedSolver;
pub use solution::Selection;

/// A solver for [`MckpInstance`]s.
///
/// Implementations must return a [`Selection`] that is **feasible**
/// (`selection_weight ≤ capacity`) whenever one exists, and
/// [`SolveError::Infeasible`] otherwise. Exact solvers additionally return
/// an optimal selection; heuristic ones document their approximation
/// behaviour.
pub trait Solver {
    /// Solves the instance.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Infeasible`] when no selection fits within the
    /// capacity.
    fn solve(&self, instance: &MckpInstance) -> Result<Selection, SolveError>;

    /// A short human-readable solver name for reports.
    fn name(&self) -> &'static str;
}

impl<S: Solver + ?Sized> Solver for &S {
    fn solve(&self, instance: &MckpInstance) -> Result<Selection, SolveError> {
        (**self).solve(instance)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<S: Solver + ?Sized> Solver for Box<S> {
    fn solve(&self, instance: &MckpInstance) -> Result<Selection, SolveError> {
        (**self).solve(instance)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}
