//! A fully polynomial-time approximation scheme (FPTAS) for MCKP.
//!
//! The paper's exact DP is pseudo-polynomial in the *weight* grid; this
//! solver is the classic complement — a DP over **scaled profits** with a
//! provable guarantee: for any `ε ∈ (0, 1)`, the returned selection's
//! profit is at least `(1 − ε)·OPT`, in time `O(n²·m/ε)` for `n` classes
//! of `m` items.
//!
//! Scheme (Lawler-style profit scaling, adapted to multiple choice):
//!
//! 1. let `P` be the largest finite item profit and `K = ε·P/n`;
//! 2. scale every profit to `p' = ⌊p/K⌋` (so `Σp'` ≤ `n·⌊P/K⌋ = n²/ε`);
//! 3. DP over exact scaled profit: `dp[q]` = minimum weight of a
//!    selection (one item per processed class) with `Σp' = q`;
//! 4. answer: the largest `q` whose `dp[q]` fits the capacity; the lost
//!    profit is at most `n·K = ε·P ≤ ε·OPT`.
//!
//! For the offloading instances of the paper the weight-grid DP is
//! usually faster, but the FPTAS gives a *guarantee knob*: callers choose
//! the accuracy/time trade-off explicitly, independent of how weights are
//! distributed.

use crate::error::SolveError;
use crate::instance::MckpInstance;
use crate::lp::dominance_filter;
use crate::solution::Selection;
use crate::Solver;

/// The profit-scaling FPTAS solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FptasSolver {
    epsilon: f64,
}

impl FptasSolver {
    /// Creates a solver with approximation guarantee `(1 − epsilon)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon < 1`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        FptasSolver { epsilon }
    }

    /// The configured `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl Solver for FptasSolver {
    fn solve(&self, instance: &MckpInstance) -> Result<Selection, SolveError> {
        let classes = instance.classes();
        let capacity = instance.capacity();
        let n = classes.len();
        let pruned: Vec<Vec<usize>> = classes.iter().map(|c| dominance_filter(c)).collect();

        // Largest profit among items that could ever be selected.
        let max_profit = classes
            .iter()
            .flat_map(|c| c.iter())
            .filter(|item| item.weight <= capacity)
            .map(|item| item.profit)
            .fold(0.0f64, f64::max);
        if max_profit <= 0.0 {
            // All profits zero (or nothing fits): any feasible selection
            // is optimal; delegate to the cheapest one.
            let sel = instance.min_weight_selection();
            return if instance.is_feasible(&sel) {
                Ok(sel)
            } else {
                Err(SolveError::Infeasible)
            };
        }

        let k = self.epsilon * max_profit / n as f64;
        // Clamp before the cast: profits are validated non-negative and
        // `k > 0` here, but the interval checker (A4) cannot bound
        // `p / k` on its own, and a table beyond u32::MAX cells could
        // never be allocated anyway.
        let scale = |p: f64| (p / k).floor().clamp(0.0, u32::MAX as f64) as usize;
        // Only items that can fit contribute to the reachable profit
        // range (an unfittable 10⁹-profit item must not blow up the
        // table).
        let q_max: usize = pruned
            .iter()
            .zip(classes)
            .map(|(idxs, class)| {
                idxs.iter()
                    .filter(|&&i| class[i].weight <= capacity)
                    .map(|&i| scale(class[i].profit))
                    .max()
                    .unwrap_or(0)
            })
            .sum();

        // dp[q] = min weight achieving exactly scaled profit q.
        const INF: f64 = f64::INFINITY;
        let mut dp: Vec<f64> = vec![INF; q_max + 1];
        let mut choice: Vec<Vec<usize>> = Vec::with_capacity(n);
        // First class.
        {
            let mut ch = vec![usize::MAX; q_max + 1];
            for (pi, &item_idx) in pruned[0].iter().enumerate() {
                let item = classes[0][item_idx];
                if item.weight > capacity {
                    continue;
                }
                let q = scale(item.profit);
                if item.weight < dp[q] {
                    dp[q] = item.weight;
                    ch[q] = pi;
                }
            }
            choice.push(ch);
        }
        for (cls, class) in classes.iter().enumerate().skip(1) {
            let mut next = vec![INF; q_max + 1];
            let mut ch = vec![usize::MAX; q_max + 1];
            for (pi, &item_idx) in pruned[cls].iter().enumerate() {
                let item = class[item_idx];
                if item.weight > capacity {
                    continue;
                }
                let dq = scale(item.profit);
                for q in 0..=q_max.saturating_sub(dq) {
                    if dp[q] == INF {
                        continue;
                    }
                    let w = dp[q] + item.weight;
                    if w < next[q + dq] {
                        next[q + dq] = w;
                        ch[q + dq] = pi;
                    }
                }
            }
            dp = next;
            choice.push(ch);
        }

        // Best reachable scaled profit within capacity.
        let best_q = (0..=q_max)
            .rev()
            .find(|&q| dp[q] <= capacity)
            .ok_or(SolveError::Infeasible)?;

        // Reconstruct backwards.
        let mut q = best_q;
        let mut picks = vec![0usize; n];
        for cls in (0..n).rev() {
            let pi = choice[cls][q];
            debug_assert_ne!(pi, usize::MAX, "reconstruction hit unreachable cell");
            let item_idx = pruned[cls][pi];
            picks[cls] = item_idx;
            q -= scale(classes[cls][item_idx].profit);
        }
        let selection = Selection::new(picks);
        debug_assert!(instance.is_feasible(&selection));
        Ok(selection)
    }

    fn name(&self) -> &'static str {
        "fptas"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceSolver;
    use crate::instance::Item;

    fn inst(classes: Vec<Vec<Item>>, capacity: f64) -> MckpInstance {
        MckpInstance::new(classes, capacity).unwrap()
    }

    #[test]
    fn finds_obvious_optimum() {
        let i = inst(
            vec![
                vec![Item::new(0.2, 1.0), Item::new(0.6, 5.0)],
                vec![Item::new(0.3, 2.0), Item::new(0.7, 4.0)],
            ],
            1.0,
        );
        let sel = FptasSolver::new(0.05).solve(&i).unwrap();
        assert!((i.selection_profit(&sel).unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn guarantee_holds_vs_brute_force() {
        // Random-ish hand instances: profit >= (1 - eps) OPT.
        let instances = vec![
            inst(
                vec![
                    vec![
                        Item::new(0.11, 2.0),
                        Item::new(0.42, 6.5),
                        Item::new(0.65, 8.0),
                    ],
                    vec![Item::new(0.05, 1.0), Item::new(0.33, 5.0)],
                    vec![
                        Item::new(0.2, 3.0),
                        Item::new(0.25, 3.2),
                        Item::new(0.5, 7.7),
                    ],
                ],
                1.0,
            ),
            inst(
                vec![
                    vec![Item::new(0.5, 5.0), Item::new(0.1, 1.0)],
                    vec![Item::new(0.5, 5.0), Item::new(0.1, 1.0)],
                ],
                1.0,
            ),
        ];
        for eps in [0.5, 0.2, 0.05] {
            let solver = FptasSolver::new(eps);
            for i in &instances {
                let approx = i.selection_profit(&solver.solve(i).unwrap()).unwrap();
                let opt = i
                    .selection_profit(&BruteForceSolver::default().solve(i).unwrap())
                    .unwrap();
                assert!(
                    approx >= (1.0 - eps) * opt - 1e-9,
                    "eps={eps}: {approx} < (1-eps) * {opt}"
                );
                assert!(approx <= opt + 1e-9);
            }
        }
    }

    #[test]
    fn infeasible_detected() {
        let i = inst(
            vec![vec![Item::new(0.7, 1.0)], vec![Item::new(0.7, 1.0)]],
            1.0,
        );
        assert_eq!(
            FptasSolver::new(0.1).solve(&i).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn zero_profit_instance() {
        let i = inst(vec![vec![Item::new(0.5, 0.0), Item::new(0.2, 0.0)]], 1.0);
        let sel = FptasSolver::new(0.1).solve(&i).unwrap();
        assert!(i.is_feasible(&sel));
    }

    #[test]
    fn oversized_items_ignored_in_scaling() {
        // A huge-profit item that can never fit must not blow up K.
        let i = inst(vec![vec![Item::new(5.0, 1e9), Item::new(0.3, 2.0)]], 1.0);
        let sel = FptasSolver::new(0.1).solve(&i).unwrap();
        assert_eq!(sel.choices(), &[1]);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1)")]
    fn bad_epsilon_panics() {
        FptasSolver::new(1.5);
    }

    #[test]
    fn name_and_epsilon() {
        let s = FptasSolver::new(0.25);
        assert_eq!(s.epsilon(), 0.25);
        assert_eq!(s.name(), "fptas");
    }
}
