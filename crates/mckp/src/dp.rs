//! Exact pseudo-polynomial dynamic programming for MCKP.
//!
//! This is the "dynamic programming algorithm \[Dudzinski & Walukiewicz
//! 1987\]" the paper adopts (§5.2): a profit-maximizing DP over a weight
//! grid. The paper's weights are real densities in `[0, 1]`, so the grid is
//! obtained by **rounding weights up** to a configurable resolution. The
//! consequences are:
//!
//! * any returned selection is feasible for the *true* real-valued
//!   capacity (safety is never compromised), and
//! * optimality is exact *on the rounded instance*; with the default
//!   resolution of 10⁴ grid units the rounding loss per item is below
//!   10⁻⁴ of the capacity, which is far below the granularity of the
//!   paper's benefit functions.
//!
//! Runtime is `O(total_items × resolution)`; memory is
//! `O(num_classes × resolution)` for choice reconstruction.

use crate::error::SolveError;
use crate::instance::MckpInstance;
use crate::lp::dominance_filter;
use crate::solution::Selection;
use crate::Solver;

/// Exact DP solver over a discretized weight grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpSolver {
    resolution: usize,
}

impl DpSolver {
    /// Default number of grid units the capacity is divided into.
    pub const DEFAULT_RESOLUTION: usize = 10_000;

    /// Creates a solver with the given weight-grid resolution.
    ///
    /// # Panics
    ///
    /// Panics if `resolution == 0`.
    pub fn with_resolution(resolution: usize) -> Self {
        assert!(resolution > 0, "resolution must be positive");
        DpSolver { resolution }
    }

    /// The configured grid resolution.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Scales a weight onto the grid, rounding up (safe side).
    ///
    /// Weights that do not fit the capacity at all map to `resolution + 1`
    /// (never selectable).
    fn scale(&self, weight: f64, capacity: f64) -> usize {
        // Ordered comparisons, not `==`: weights/capacities are
        // validated non-negative, and lint L2 bans f64 equality in
        // density math.
        if weight <= 0.0 {
            return 0;
        }
        if capacity <= 0.0 || weight > capacity {
            return self.resolution + 1;
        }
        // Clamp before the cast: the guards above pin the ratio into
        // (0, 1], but the interval checker (A4) reasons per-variable, and
        // a grid beyond u32::MAX cells could never be allocated anyway.
        let scaled = (weight / capacity * self.resolution as f64)
            .ceil()
            .clamp(0.0, u32::MAX as f64) as usize;
        scaled.min(self.resolution + 1)
    }
}

impl Default for DpSolver {
    fn default() -> Self {
        DpSolver {
            resolution: Self::DEFAULT_RESOLUTION,
        }
    }
}

impl Solver for DpSolver {
    // analyze: hot-path
    fn solve(&self, instance: &MckpInstance) -> Result<Selection, SolveError> {
        let res = self.resolution;
        let capacity = instance.capacity();
        let classes = instance.classes();

        // Dominance-pruned item indices per class (exactness preserved).
        // analyze: allow(A7): one prune pass per solve, before the DP loops
        let pruned: Vec<Vec<usize>> = classes.iter().map(|c| dominance_filter(c)).collect();

        // dp[c] = max profit over processed classes with scaled weight <= c.
        const NEG: f64 = f64::NEG_INFINITY;
        // analyze: allow(A7): DP row allocated once per solve, reused across classes
        let mut dp: Vec<f64> = vec![NEG; res + 1];
        // choice[k][c] = index (into pruned[k]) of the item chosen at class
        // k when the remaining budget is c; usize::MAX = unreachable.
        let mut choice: Vec<Vec<usize>> = Vec::with_capacity(classes.len());

        // First class: best item with scaled weight <= c (prefix max).
        {
            // analyze: allow(A7): one choice row per class — O(classes) setup, not per-cell work
            let mut ch = vec![usize::MAX; res + 1];
            for (pi, &item_idx) in pruned[0].iter().enumerate() {
                let item = classes[0][item_idx];
                let sw = self.scale(item.weight, capacity);
                if sw > res {
                    continue;
                }
                if item.profit > dp[sw] {
                    dp[sw] = item.profit;
                    ch[sw] = pi;
                }
            }
            // Make dp monotone in c.
            for c in 1..=res {
                if dp[c - 1] > dp[c] {
                    dp[c] = dp[c - 1];
                    ch[c] = ch[c - 1];
                }
            }
            choice.push(ch);
        }

        for (k, class) in classes.iter().enumerate().skip(1) {
            // analyze: allow(A7): fresh DP row per class — O(classes) allocations per solve
            let mut next = vec![NEG; res + 1];
            // analyze: allow(A7): one choice row per class — O(classes) setup, not per-cell work
            let mut ch = vec![usize::MAX; res + 1];
            for c in 0..=res {
                for (pi, &item_idx) in pruned[k].iter().enumerate() {
                    let item = class[item_idx];
                    let sw = self.scale(item.weight, capacity);
                    if sw > c {
                        // pruned items are weight-sorted; the rest are heavier
                        break;
                    }
                    let base = dp[c - sw];
                    if base == NEG {
                        continue;
                    }
                    let value = base + item.profit;
                    if value > next[c] {
                        next[c] = value;
                        ch[c] = pi;
                    }
                }
            }
            dp = next;
            choice.push(ch);
        }

        if dp[res] == NEG {
            return Err(SolveError::Infeasible);
        }

        // Reconstruct backwards from the full budget.
        let mut budget = res;
        // analyze: allow(A7): reconstruction buffer built once per solve
        let mut picks = vec![0usize; classes.len()];
        for k in (0..classes.len()).rev() {
            let pi = choice[k][budget];
            debug_assert_ne!(pi, usize::MAX, "reconstruction hit unreachable cell");
            let item_idx = pruned[k][pi];
            picks[k] = item_idx;
            let sw = self.scale(classes[k][item_idx].weight, capacity);
            budget -= sw;
        }

        let selection = Selection::new(picks);
        debug_assert!(instance.is_feasible(&selection));
        Ok(selection)
    }

    fn name(&self) -> &'static str {
        "dp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Item;

    fn solve(classes: Vec<Vec<Item>>, capacity: f64) -> Result<Selection, SolveError> {
        let inst = MckpInstance::new(classes, capacity).unwrap();
        DpSolver::default().solve(&inst)
    }

    #[test]
    fn picks_obvious_optimum() {
        let sel = solve(
            vec![
                vec![Item::new(0.2, 1.0), Item::new(0.6, 5.0)],
                vec![Item::new(0.3, 2.0), Item::new(0.7, 4.0)],
            ],
            1.0,
        )
        .unwrap();
        assert_eq!(sel.choices(), &[1, 0]);
    }

    #[test]
    fn single_class_picks_best_fitting() {
        let sel = solve(
            vec![vec![
                Item::new(0.2, 1.0),
                Item::new(0.8, 9.0),
                Item::new(1.5, 100.0), // does not fit
            ]],
            1.0,
        )
        .unwrap();
        assert_eq!(sel.choices(), &[1]);
    }

    #[test]
    fn infeasible_when_nothing_fits() {
        let err = solve(vec![vec![Item::new(2.0, 1.0)]], 1.0).unwrap_err();
        assert_eq!(err, SolveError::Infeasible);
    }

    #[test]
    fn infeasible_when_combination_exceeds() {
        let err = solve(
            vec![vec![Item::new(0.7, 1.0)], vec![Item::new(0.7, 1.0)]],
            1.0,
        )
        .unwrap_err();
        assert_eq!(err, SolveError::Infeasible);
    }

    #[test]
    fn zero_capacity_allows_zero_weight_items() {
        let sel = solve(vec![vec![Item::new(0.0, 3.0), Item::new(0.5, 9.0)]], 0.0).unwrap();
        assert_eq!(sel.choices(), &[0]);
    }

    #[test]
    fn zero_capacity_infeasible_with_positive_weights() {
        let err = solve(vec![vec![Item::new(0.1, 1.0)]], 0.0).unwrap_err();
        assert_eq!(err, SolveError::Infeasible);
    }

    #[test]
    fn exact_fill_is_allowed() {
        // Two items of exactly half the capacity each.
        let sel = solve(
            vec![
                vec![Item::new(0.5, 5.0), Item::new(0.1, 1.0)],
                vec![Item::new(0.5, 5.0), Item::new(0.1, 1.0)],
            ],
            1.0,
        )
        .unwrap();
        assert_eq!(sel.choices(), &[0, 0]);
    }

    #[test]
    fn respects_rounding_safety() {
        // Weights just over a grid cell: rounded up, so DP may refuse a
        // razor-thin fit, but must never return an infeasible selection.
        let inst = MckpInstance::new(
            vec![
                vec![Item::new(0.33334, 1.0), Item::new(0.0, 0.0)],
                vec![Item::new(0.33334, 1.0), Item::new(0.0, 0.0)],
                vec![Item::new(0.33334, 1.0), Item::new(0.0, 0.0)],
            ],
            1.0,
        )
        .unwrap();
        let sel = DpSolver::with_resolution(100).solve(&inst).unwrap();
        assert!(inst.is_feasible(&sel));
    }

    #[test]
    fn matches_brute_force_small() {
        use crate::brute::BruteForceSolver;
        let inst = MckpInstance::new(
            vec![
                vec![
                    Item::new(0.11, 2.0),
                    Item::new(0.42, 6.5),
                    Item::new(0.65, 8.0),
                ],
                vec![Item::new(0.05, 1.0), Item::new(0.33, 5.0)],
                vec![
                    Item::new(0.2, 3.0),
                    Item::new(0.25, 3.2),
                    Item::new(0.5, 7.7),
                ],
            ],
            1.0,
        )
        .unwrap();
        let dp = DpSolver::default().solve(&inst).unwrap();
        let bf = BruteForceSolver::default().solve(&inst).unwrap();
        assert!(
            (inst.selection_profit(&dp).unwrap() - inst.selection_profit(&bf).unwrap()).abs()
                < 1e-9,
            "dp {} vs brute {}",
            inst.selection_profit(&dp).unwrap(),
            inst.selection_profit(&bf).unwrap()
        );
    }

    #[test]
    fn name_and_resolution() {
        let s = DpSolver::with_resolution(500);
        assert_eq!(s.resolution(), 500);
        assert_eq!(s.name(), "dp");
        assert_eq!(
            DpSolver::default().resolution(),
            DpSolver::DEFAULT_RESOLUTION
        );
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn zero_resolution_panics() {
        DpSolver::with_resolution(0);
    }
}
