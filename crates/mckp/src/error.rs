//! MCKP solver errors.

use std::fmt;

/// Errors produced by MCKP construction and solving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// No selection fits within the capacity (even the minimum-weight one).
    Infeasible,
    /// The instance itself is malformed (empty class, negative weight, …).
    BadInstance(String),
    /// An instance is too large for the requested solver (e.g. brute force
    /// on an instance with more than ~a million combinations).
    TooLarge(String),
}

impl SolveError {
    pub(crate) fn bad(msg: impl Into<String>) -> Self {
        SolveError::BadInstance(msg.into())
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "no feasible selection within capacity"),
            SolveError::BadInstance(msg) => write!(f, "malformed MCKP instance: {msg}"),
            SolveError::TooLarge(msg) => write!(f, "instance too large for this solver: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SolveError::Infeasible.to_string().contains("no feasible"));
        assert!(SolveError::bad("x").to_string().contains("malformed"));
        assert!(SolveError::TooLarge("y".into())
            .to_string()
            .contains("too large"));
    }
}
