//! Exhaustive enumeration for tiny MCKP instances.
//!
//! Only intended as a testing oracle: the number of candidate selections is
//! the product of class sizes, so the solver refuses instances above a
//! configurable combination cap instead of silently running forever.

use crate::error::SolveError;
use crate::instance::MckpInstance;
use crate::solution::Selection;
use crate::Solver;

/// Brute-force solver with a combination cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BruteForceSolver {
    max_combinations: u128,
}

impl BruteForceSolver {
    /// Default combination cap.
    pub const DEFAULT_MAX_COMBINATIONS: u128 = 2_000_000;

    /// Creates a solver with the given combination cap.
    pub fn with_max_combinations(max_combinations: u128) -> Self {
        BruteForceSolver { max_combinations }
    }
}

impl Default for BruteForceSolver {
    fn default() -> Self {
        BruteForceSolver {
            max_combinations: Self::DEFAULT_MAX_COMBINATIONS,
        }
    }
}

impl Solver for BruteForceSolver {
    fn solve(&self, instance: &MckpInstance) -> Result<Selection, SolveError> {
        let combos: u128 = instance.classes().iter().map(|c| c.len() as u128).product();
        if combos > self.max_combinations {
            return Err(SolveError::TooLarge(format!(
                "{combos} combinations exceed cap {}",
                self.max_combinations
            )));
        }

        let classes = instance.classes();
        let mut indices = vec![0usize; classes.len()];
        let mut best: Option<(f64, Vec<usize>)> = None;
        // analyze: allow(A8): the odometer below strictly increments the mixed-radix value of `indices` each pass and returns on wrap-around
        loop {
            // `indices[c]` is kept `< classes[c].len()` by the odometer;
            // the zip + flatten lookup stays total regardless.
            let (weight, profit) = indices
                .iter()
                .zip(classes)
                .filter_map(|(&j, class)| class.get(j))
                .fold((0.0f64, 0.0f64), |(w, p), item| {
                    (w + item.weight, p + item.profit)
                });
            if weight <= instance.capacity() && best.as_ref().is_none_or(|(bp, _)| profit > *bp) {
                best = Some((profit, indices.clone()));
            }
            // Odometer increment.
            let mut k = 0;
            // analyze: allow(A8): each iteration either returns a carried-out digit to zero and advances k, or breaks having incremented digit k
            loop {
                let Some((digit, class)) = indices.get_mut(k).zip(classes.get(k)) else {
                    // Wrapped past the most significant digit: enumeration
                    // is complete.
                    return match best {
                        Some((_, choices)) => Ok(Selection::new(choices)),
                        None => Err(SolveError::Infeasible),
                    };
                };
                *digit += 1;
                if *digit < class.len() {
                    break;
                }
                *digit = 0;
                k += 1;
            }
        }
    }

    fn name(&self) -> &'static str {
        "brute-force"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Item;

    #[test]
    fn finds_optimum() {
        let inst = MckpInstance::new(
            vec![
                vec![Item::new(0.2, 1.0), Item::new(0.6, 5.0)],
                vec![Item::new(0.3, 2.0), Item::new(0.7, 4.0)],
            ],
            1.0,
        )
        .unwrap();
        let sel = BruteForceSolver::default().solve(&inst).unwrap();
        assert_eq!(inst.selection_profit(&sel).unwrap(), 7.0);
    }

    #[test]
    fn infeasible() {
        let inst = MckpInstance::new(vec![vec![Item::new(2.0, 1.0)]], 1.0).unwrap();
        assert_eq!(
            BruteForceSolver::default().solve(&inst).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn too_large_guard() {
        let classes: Vec<Vec<Item>> = (0..8)
            .map(|_| {
                (0..10)
                    .map(|j| Item::new(0.01 * j as f64, j as f64))
                    .collect()
            })
            .collect();
        let inst = MckpInstance::new(classes, 1.0).unwrap();
        match BruteForceSolver::with_max_combinations(1000).solve(&inst) {
            Err(SolveError::TooLarge(_)) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn single_class() {
        let inst = MckpInstance::new(
            vec![vec![
                Item::new(0.5, 1.0),
                Item::new(0.4, 2.0),
                Item::new(0.9, 3.0),
            ]],
            0.6,
        )
        .unwrap();
        let sel = BruteForceSolver::default().solve(&inst).unwrap();
        assert_eq!(sel.choices(), &[1]);
    }

    #[test]
    fn name() {
        assert_eq!(BruteForceSolver::default().name(), "brute-force");
    }
}
