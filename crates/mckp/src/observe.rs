//! Solver instrumentation: latency histograms per solver.
//!
//! [`ObservedSolver`] wraps any [`Solver`] and records every `solve`
//! call's wall-clock latency into a per-solver log-linear histogram
//! (`mckp_solve_ns_<name>`) plus a call counter
//! (`mckp_solves_total_<name>`) in an [`rto_obs::MetricsRegistry`].
//! The wrapper is transparent: results, errors, and [`Solver::name`]
//! pass straight through, so it can be dropped in anywhere a solver is
//! expected — including inside the offloading decision manager.

use crate::{MckpInstance, Selection, SolveError, Solver};
use rto_obs::{Counter, Histogram, MetricsRegistry};

/// A [`Solver`] decorator that meters decision latency.
#[derive(Debug, Clone)]
pub struct ObservedSolver<S> {
    inner: S,
    latency_ns: Histogram,
    solves: Counter,
    errors: Counter,
}

impl<S: Solver> ObservedSolver<S> {
    /// Wraps `inner`, registering its metrics in `metrics` under names
    /// derived from [`Solver::name`].
    pub fn new(inner: S, metrics: &MetricsRegistry) -> Self {
        let name = inner.name();
        ObservedSolver {
            latency_ns: metrics.histogram(&format!("mckp_solve_ns_{name}")),
            solves: metrics.counter(&format!("mckp_solves_total_{name}")),
            errors: metrics.counter(&format!("mckp_solve_errors_total_{name}")),
            inner,
        }
    }

    /// Unwraps the inner solver.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The inner solver.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Solver> Solver for ObservedSolver<S> {
    fn solve(&self, instance: &MckpInstance) -> Result<Selection, SolveError> {
        let sw = rto_obs::Stopwatch::start();
        let result = self.inner.solve(instance);
        self.latency_ns.record(sw.elapsed_ns());
        self.solves.inc();
        if result.is_err() {
            self.errors.inc();
        }
        result
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::DpSolver;
    use crate::instance::Item;

    fn tiny() -> MckpInstance {
        MckpInstance::new(
            vec![
                vec![Item::new(0.2, 1.0), Item::new(0.6, 5.0)],
                vec![Item::new(0.3, 2.0), Item::new(0.7, 4.0)],
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn observed_solver_is_transparent_and_meters() {
        let metrics = MetricsRegistry::new();
        let solver = ObservedSolver::new(DpSolver::default(), &metrics);
        assert_eq!(solver.name(), DpSolver::default().name());
        let inst = tiny();
        let sel = solver.solve(&inst).unwrap();
        let direct = DpSolver::default().solve(&inst).unwrap();
        assert_eq!(
            inst.selection_profit(&sel).unwrap(),
            inst.selection_profit(&direct).unwrap(),
            "wrapper must not change the answer"
        );
        let snap = metrics.snapshot();
        let name = solver.name();
        assert_eq!(snap.counter(&format!("mckp_solves_total_{name}")), Some(1));
        assert_eq!(
            snap.counter(&format!("mckp_solve_errors_total_{name}")),
            Some(0)
        );
        let h = snap.histogram(&format!("mckp_solve_ns_{name}")).unwrap();
        assert_eq!(h.count, 1);
    }

    #[test]
    fn infeasible_counts_as_error() {
        let metrics = MetricsRegistry::new();
        let solver = ObservedSolver::new(DpSolver::default(), &metrics);
        let inst = MckpInstance::new(vec![vec![Item::new(2.0, 1.0)]], 1.0).unwrap();
        assert!(solver.solve(&inst).is_err());
        let name = solver.name();
        let snap = metrics.snapshot();
        assert_eq!(
            snap.counter(&format!("mckp_solve_errors_total_{name}")),
            Some(1)
        );
    }
}
