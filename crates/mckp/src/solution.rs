//! MCKP solutions.

use serde::{Deserialize, Serialize};

/// A solution to an MCKP instance: one chosen item index per class.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Selection {
    choices: Vec<usize>,
}

impl Selection {
    /// Creates a selection from per-class item indices.
    pub fn new(choices: Vec<usize>) -> Self {
        Selection { choices }
    }

    /// The chosen item index for `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn choice(&self, class: usize) -> usize {
        // lint: allow(L3): documented precondition — `# Panics` contract
        self.choices[class]
    }

    /// All per-class choices.
    pub fn choices(&self) -> &[usize] {
        &self.choices
    }

    /// Number of classes covered by this selection.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether the selection covers zero classes.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Replaces the choice for one class, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn set_choice(&mut self, class: usize, item: usize) -> usize {
        // lint: allow(L3): documented precondition — `# Panics` contract
        std::mem::replace(&mut self.choices[class], item)
    }
}

impl FromIterator<usize> for Selection {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Selection::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let mut s = Selection::new(vec![0, 2, 1]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.choice(1), 2);
        assert_eq!(s.choices(), &[0, 2, 1]);
        assert_eq!(s.set_choice(1, 4), 2);
        assert_eq!(s.choice(1), 4);
    }

    #[test]
    fn from_iterator() {
        let s: Selection = (0..3).collect();
        assert_eq!(s.choices(), &[0, 1, 2]);
    }

    #[test]
    fn empty_selection() {
        let s = Selection::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
