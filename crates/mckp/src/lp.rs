//! Dominance pruning, convex hulls, and the LP relaxation of MCKP.
//!
//! Classic MCKP preprocessing (see Dudzinski & Walukiewicz 1987; Kellerer,
//! Pferschy & Pisinger ch. 11):
//!
//! * An item is **IP-dominated** if another item in its class has weight ≤
//!   and profit ≥ (with at least one strict). Dominated items never appear
//!   in an optimal solution and can be discarded by every solver.
//! * An item is **LP-dominated** if it lies below the upper convex hull of
//!   the `(weight, profit)` point set of its class. LP-dominated items can
//!   appear in *integer* optima but never in the LP relaxation optimum;
//!   the greedy heuristic and the LP bound operate on the hull only.
//!
//! The **LP relaxation** is solved greedily: take the lightest hull item of
//! every class, then repeatedly apply the globally most efficient
//! *incremental upgrade* (hull step `Δprofit/Δweight`) until the capacity
//! is exhausted; the last upgrade may be fractional. The resulting value is
//! an upper bound on the integer optimum, used by branch-and-bound pruning
//! and by tests that sandwich heuristic results.

use crate::instance::{Item, MckpInstance};

/// Returns indices of items in `class` that survive IP-dominance pruning,
/// ordered by strictly increasing weight (and strictly increasing profit).
///
/// Ties in weight keep only the most profitable item; ties in both keep the
/// earliest index (deterministic).
pub fn dominance_filter(class: &[Item]) -> Vec<usize> {
    // analyze: allow(A7): index permutation sized to the class, built once per prune
    let mut order: Vec<usize> = (0..class.len()).collect();
    order.sort_by(|&a, &b| {
        class[a]
            .weight
            .total_cmp(&class[b].weight)
            .then(class[b].profit.total_cmp(&class[a].profit))
            .then(a.cmp(&b))
    });
    let mut kept: Vec<usize> = Vec::new();
    let mut best_profit = f64::NEG_INFINITY;
    for idx in order {
        if class[idx].profit > best_profit {
            kept.push(idx);
            best_profit = class[idx].profit;
        }
    }
    kept
}

/// Returns the subset of [`dominance_filter`] indices lying on the upper
/// convex hull of the `(weight, profit)` set — the LP-undominated items.
///
/// The result is ordered by strictly increasing weight, and consecutive
/// hull steps have strictly decreasing incremental efficiency.
pub fn convex_hull_indices(class: &[Item]) -> Vec<usize> {
    let pruned = dominance_filter(class);
    if pruned.len() <= 2 {
        return pruned;
    }
    let mut hull: Vec<usize> = Vec::with_capacity(pruned.len());
    for &idx in &pruned {
        while hull.len() >= 2 {
            let a = class[hull[hull.len() - 2]];
            let b = class[hull[hull.len() - 1]];
            let c = class[idx];
            // Slopes: b is kept only if slope(a→b) > slope(b→c).
            // Cross-multiplied to avoid division (all Δw > 0 after pruning).
            let lhs = (b.profit - a.profit) * (c.weight - b.weight);
            let rhs = (c.profit - b.profit) * (b.weight - a.weight);
            if lhs <= rhs {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(idx);
    }
    hull
}

/// One fractional upgrade step in the LP greedy: moving class `class` from
/// hull position `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Increment {
    class: usize,
    hull_pos: usize, // target position within the class hull
    d_weight: f64,
    d_profit: f64,
}

impl Increment {
    fn efficiency(&self) -> f64 {
        self.d_profit / self.d_weight
    }
}

/// The result of solving the LP relaxation.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Upper bound on the integer optimum.
    pub upper_bound: f64,
    /// Profit of the best *integer* prefix of the greedy (all full
    /// upgrades applied, fractional one skipped). A feasible lower bound.
    pub integer_prefix_profit: f64,
    /// Per-class hull index chosen by the integer prefix (index into the
    /// original class item list).
    pub integer_prefix_choices: Vec<usize>,
}

/// Solves the LP relaxation of the whole instance.
///
/// Returns `None` when even the minimum-weight selection exceeds the
/// capacity (the instance is infeasible).
pub fn lp_relaxation(instance: &MckpInstance) -> Option<LpSolution> {
    lp_relaxation_suffix(instance.classes(), 0, instance.capacity())
}

/// Solves the LP relaxation restricted to classes `start..`, with the given
/// remaining capacity. Used by branch-and-bound to bound partial solutions.
///
/// Returns `None` when the restricted instance is infeasible.
pub fn lp_relaxation_suffix(
    classes: &[Vec<Item>],
    start: usize,
    capacity: f64,
) -> Option<LpSolution> {
    let suffix = &classes[start..];
    let hulls: Vec<Vec<usize>> = suffix.iter().map(|c| convex_hull_indices(c)).collect();

    // Base: lightest hull item per class.
    let mut remaining = capacity;
    let mut profit = 0.0;
    let mut choices: Vec<usize> = Vec::with_capacity(suffix.len());
    for (c, hull) in hulls.iter().enumerate() {
        let first = hull[0];
        remaining -= suffix[c][first].weight;
        profit += suffix[c][first].profit;
        choices.push(first);
    }
    // Tolerate tiny negative residue from float accumulation.
    if remaining < -1e-12 {
        return None;
    }
    remaining = remaining.max(0.0);

    // Gather all hull increments; within a class efficiencies strictly
    // decrease, so a global efficiency sort respects per-class order.
    let mut increments: Vec<Increment> = Vec::new();
    for (c, hull) in hulls.iter().enumerate() {
        for pos in 1..hull.len() {
            let prev = suffix[c][hull[pos - 1]];
            let next = suffix[c][hull[pos]];
            increments.push(Increment {
                class: c,
                hull_pos: pos,
                d_weight: next.weight - prev.weight,
                d_profit: next.profit - prev.profit,
            });
        }
    }
    increments.sort_by(|a, b| {
        b.efficiency()
            .total_cmp(&a.efficiency())
            .then(a.class.cmp(&b.class))
            .then(a.hull_pos.cmp(&b.hull_pos))
    });

    let mut upper = profit;
    let mut int_profit = profit;
    let mut int_choices = choices.clone();
    // Applied hull position per class, to keep per-class sequencing sane
    // even under efficiency ties.
    let mut applied_pos: Vec<usize> = vec![0; suffix.len()];
    let mut budget = remaining;
    for inc in &increments {
        if inc.hull_pos != applied_pos[inc.class] + 1 {
            // Out-of-sequence under a tie: skip; its predecessor appears
            // earlier in the sorted order with the same efficiency.
            continue;
        }
        if inc.d_weight <= budget {
            budget -= inc.d_weight;
            upper += inc.d_profit;
            int_profit += inc.d_profit;
            applied_pos[inc.class] += 1;
            int_choices[inc.class] = hulls[inc.class][inc.hull_pos];
        } else {
            // Fractional final step: only contributes to the upper bound.
            if inc.d_weight > 0.0 {
                upper += inc.d_profit * (budget / inc.d_weight);
            }
            break;
        }
    }

    Some(LpSolution {
        upper_bound: upper,
        integer_prefix_profit: int_profit,
        integer_prefix_choices: int_choices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Item, MckpInstance};

    #[test]
    fn dominance_removes_worse_items() {
        let class = vec![
            Item::new(0.5, 3.0),
            Item::new(0.4, 4.0), // dominates the one above
            Item::new(0.6, 4.0), // dominated (heavier, same profit)
            Item::new(0.7, 5.0),
        ];
        let kept = dominance_filter(&class);
        assert_eq!(kept, vec![1, 3]);
    }

    #[test]
    fn dominance_keeps_best_among_equal_weights() {
        let class = vec![
            Item::new(0.5, 1.0),
            Item::new(0.5, 9.0),
            Item::new(0.5, 5.0),
        ];
        assert_eq!(dominance_filter(&class), vec![1]);
    }

    #[test]
    fn dominance_single_item() {
        assert_eq!(dominance_filter(&[Item::new(1.0, 1.0)]), vec![0]);
    }

    #[test]
    fn hull_drops_concave_point() {
        // (0,0), (1,1), (2,4): middle point is below the chord (0,0)-(2,4).
        let class = vec![
            Item::new(0.0, 0.0),
            Item::new(1.0, 1.0),
            Item::new(2.0, 4.0),
        ];
        assert_eq!(convex_hull_indices(&class), vec![0, 2]);
    }

    #[test]
    fn hull_keeps_concave_down_points() {
        // Efficiencies decreasing: all on hull.
        let class = vec![
            Item::new(0.0, 0.0),
            Item::new(1.0, 3.0),
            Item::new(2.0, 4.0),
        ];
        assert_eq!(convex_hull_indices(&class), vec![0, 1, 2]);
    }

    #[test]
    fn hull_collinear_points_collapse() {
        let class = vec![
            Item::new(0.0, 0.0),
            Item::new(1.0, 2.0),
            Item::new(2.0, 4.0),
        ];
        // Middle collinear point removed (slope equality pops it).
        assert_eq!(convex_hull_indices(&class), vec![0, 2]);
    }

    #[test]
    fn lp_bound_sandwiches_optimum() {
        let inst = MckpInstance::new(
            vec![
                vec![Item::new(0.2, 1.0), Item::new(0.6, 5.0)],
                vec![Item::new(0.3, 2.0), Item::new(0.7, 4.0)],
            ],
            1.0,
        )
        .unwrap();
        let lp = lp_relaxation(&inst).unwrap();
        // Integer optimum is 7 (0.6/5 + 0.3/2).
        assert!(lp.upper_bound >= 7.0 - 1e-9, "ub={}", lp.upper_bound);
        assert!(lp.integer_prefix_profit <= lp.upper_bound + 1e-12);
    }

    #[test]
    fn lp_infeasible_when_min_weights_exceed() {
        let inst = MckpInstance::new(
            vec![vec![Item::new(0.8, 1.0)], vec![Item::new(0.8, 1.0)]],
            1.0,
        )
        .unwrap();
        assert!(lp_relaxation(&inst).is_none());
    }

    #[test]
    fn lp_exact_when_everything_fits() {
        // Capacity large enough for the best item everywhere: LP == IP.
        let inst = MckpInstance::new(
            vec![
                vec![Item::new(0.1, 1.0), Item::new(0.2, 9.0)],
                vec![Item::new(0.1, 2.0), Item::new(0.3, 8.0)],
            ],
            10.0,
        )
        .unwrap();
        let lp = lp_relaxation(&inst).unwrap();
        assert!((lp.upper_bound - 17.0).abs() < 1e-9);
        assert!((lp.integer_prefix_profit - 17.0).abs() < 1e-9);
        assert_eq!(lp.integer_prefix_choices, vec![1, 1]);
    }

    #[test]
    fn suffix_bound_only_counts_suffix() {
        let classes = vec![
            vec![Item::new(0.5, 100.0)],
            vec![Item::new(0.1, 1.0), Item::new(0.4, 3.0)],
        ];
        let lp = lp_relaxation_suffix(&classes, 1, 0.5).unwrap();
        assert!((lp.upper_bound - 3.0).abs() < 1e-9);
    }

    #[test]
    fn integer_prefix_is_feasible() {
        let inst = MckpInstance::new(
            vec![
                vec![
                    Item::new(0.1, 0.0),
                    Item::new(0.5, 5.0),
                    Item::new(0.9, 6.0),
                ],
                vec![Item::new(0.1, 0.0), Item::new(0.4, 4.0)],
            ],
            1.0,
        )
        .unwrap();
        let lp = lp_relaxation(&inst).unwrap();
        let w: f64 = lp
            .integer_prefix_choices
            .iter()
            .enumerate()
            .map(|(c, &j)| inst.classes()[c][j].weight)
            .sum();
        assert!(w <= 1.0 + 1e-12);
    }
}
