//! Exact branch-and-bound for MCKP with an LP-relaxation bound.
//!
//! Used primarily as an independent exact oracle to validate
//! [`crate::dp::DpSolver`] (the two must agree up to DP grid rounding), and
//! as a grid-free exact solver for instances where weight discretization is
//! undesirable.
//!
//! Search: depth-first over classes; at each node the remaining classes are
//! bounded by [`crate::lp::lp_relaxation_suffix`]; nodes whose bound cannot
//! beat the incumbent are pruned. The incumbent is initialized with the
//! HEU-OE heuristic, which makes pruning effective immediately.

use crate::error::SolveError;
use crate::heu::HeuOeSolver;
use crate::instance::MckpInstance;
use crate::lp::{dominance_filter, lp_relaxation_suffix};
use crate::solution::Selection;
use crate::Solver;

/// Exact branch-and-bound solver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchBoundSolver {
    /// Optional cap on explored nodes; `None` = unbounded. When the cap is
    /// hit the solver returns [`SolveError::TooLarge`] instead of a
    /// possibly suboptimal answer.
    node_limit: Option<u64>,
}

impl BranchBoundSolver {
    /// Creates an unbounded exact solver.
    pub fn new() -> Self {
        BranchBoundSolver { node_limit: None }
    }

    /// Sets a node-exploration cap, after which solving aborts with
    /// [`SolveError::TooLarge`].
    pub fn with_node_limit(limit: u64) -> Self {
        BranchBoundSolver {
            node_limit: Some(limit),
        }
    }
}

struct Search<'a> {
    classes: &'a [Vec<crate::instance::Item>],
    pruned: Vec<Vec<usize>>,
    capacity: f64,
    best_profit: f64,
    best: Vec<usize>,
    current: Vec<usize>,
    nodes: u64,
    node_limit: Option<u64>,
    aborted: bool,
}

impl Search<'_> {
    // analyze: allow(A8): recursion advances class index k by one per level and leaf-exits when classes.get(k) runs out; depth ≤ class count
    fn dfs(&mut self, k: usize, weight: f64, profit: f64) {
        if self.aborted {
            return;
        }
        self.nodes += 1;
        if let Some(limit) = self.node_limit {
            if self.nodes > limit {
                self.aborted = true;
                return;
            }
        }
        let classes = self.classes;
        let Some(class) = classes.get(k) else {
            // Leaf: every class has a committed choice.
            if profit > self.best_profit {
                self.best_profit = profit;
                self.best = self.current.clone();
            }
            return;
        };
        // Bound the completion of this node.
        match lp_relaxation_suffix(classes, k, self.capacity - weight) {
            None => return, // cannot even fit minimum-weight items
            Some(lp) => {
                if profit + lp.upper_bound <= self.best_profit + 1e-12 {
                    return;
                }
            }
        }
        // Try items in profit-descending order for early good incumbents.
        let mut order = self.pruned.get(k).cloned().unwrap_or_default();
        order.sort_by(|&a, &b| {
            // total_cmp: instances are validated NaN-free, and a total
            // order keeps this panic-free by construction (lint L3).
            let profit_of = |j: usize| class.get(j).map_or(f64::NEG_INFINITY, |it| it.profit);
            profit_of(b).total_cmp(&profit_of(a))
        });
        for item_idx in order {
            let Some(item) = class.get(item_idx).copied() else {
                continue; // dominance indices always index `class`
            };
            if weight + item.weight > self.capacity {
                continue;
            }
            if let Some(slot) = self.current.get_mut(k) {
                *slot = item_idx;
            }
            self.dfs(k + 1, weight + item.weight, profit + item.profit);
        }
    }
}

impl Solver for BranchBoundSolver {
    fn solve(&self, instance: &MckpInstance) -> Result<Selection, SolveError> {
        if !instance.has_feasible_selection() {
            return Err(SolveError::Infeasible);
        }
        // Seed the incumbent with the heuristic.
        let seed = HeuOeSolver::new().solve(instance)?;
        let mut search = Search {
            classes: instance.classes(),
            pruned: instance
                .classes()
                .iter()
                .map(|c| dominance_filter(c))
                .collect(),
            capacity: instance.capacity(),
            best_profit: instance.selection_profit(&seed)?,
            best: seed.choices().to_vec(),
            current: vec![0; instance.num_classes()],
            nodes: 0,
            node_limit: self.node_limit,
            aborted: false,
        };
        search.dfs(0, 0.0, 0.0);
        if search.aborted {
            return Err(SolveError::TooLarge(format!(
                "node limit {:?} exceeded",
                self.node_limit
            )));
        }
        let selection = Selection::new(search.best);
        debug_assert!(instance.is_feasible(&selection));
        Ok(selection)
    }

    fn name(&self) -> &'static str {
        "branch-bound"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceSolver;
    use crate::instance::Item;

    fn inst(classes: Vec<Vec<Item>>, capacity: f64) -> MckpInstance {
        MckpInstance::new(classes, capacity).unwrap()
    }

    #[test]
    fn matches_brute_force() {
        let i = inst(
            vec![
                vec![
                    Item::new(0.11, 2.0),
                    Item::new(0.42, 6.5),
                    Item::new(0.65, 8.0),
                ],
                vec![Item::new(0.05, 1.0), Item::new(0.33, 5.0)],
                vec![
                    Item::new(0.2, 3.0),
                    Item::new(0.25, 3.2),
                    Item::new(0.5, 7.7),
                ],
                vec![Item::new(0.01, 0.2), Item::new(0.3, 4.0)],
            ],
            1.0,
        );
        let bb = BranchBoundSolver::new().solve(&i).unwrap();
        let bf = BruteForceSolver::default().solve(&i).unwrap();
        assert!((i.selection_profit(&bb).unwrap() - i.selection_profit(&bf).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let i = inst(vec![vec![Item::new(1.5, 1.0)]], 1.0);
        assert_eq!(
            BranchBoundSolver::new().solve(&i).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn node_limit_aborts() {
        // A zero-node cap aborts at the root of any search.
        let classes: Vec<Vec<Item>> = (0..4)
            .map(|c| {
                (0..4)
                    .map(|j| Item::new(0.05 + 0.05 * j as f64, (c + j) as f64 + 0.1))
                    .collect()
            })
            .collect();
        let i = inst(classes, 1.0);
        match BranchBoundSolver::with_node_limit(0).solve(&i) {
            Err(SolveError::TooLarge(_)) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn exact_fill_found() {
        let i = inst(
            vec![
                vec![Item::new(0.5, 5.0), Item::new(0.1, 1.0)],
                vec![Item::new(0.5, 5.0), Item::new(0.1, 1.0)],
            ],
            1.0,
        );
        let sel = BranchBoundSolver::new().solve(&i).unwrap();
        assert!((i.selection_profit(&sel).unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn never_worse_than_heuristic() {
        let i = inst(
            vec![
                vec![
                    Item::new(0.0, 0.0),
                    Item::new(0.35, 4.9),
                    Item::new(0.5, 7.0),
                ],
                vec![Item::new(0.6, 10.0)],
            ],
            1.0,
        );
        let heu = HeuOeSolver::new().solve(&i).unwrap();
        let bb = BranchBoundSolver::new().solve(&i).unwrap();
        assert!(i.selection_profit(&bb).unwrap() >= i.selection_profit(&heu).unwrap() - 1e-12);
    }

    #[test]
    fn name() {
        assert_eq!(BranchBoundSolver::new().name(), "branch-bound");
    }
}
