//! MCKP instance model: items, classes, capacity, and validation.

use crate::error::SolveError;
use crate::solution::Selection;
use serde::{Deserialize, Serialize};

/// One choice inside a class: a `(weight, profit)` pair.
///
/// In the offloading reduction, the weight is the Theorem-3 density
/// contribution (`C_i/T_i` for the local choice,
/// `(C_{i,1}+C_{i,2})/(D_i − r_{i,j})` for each offloading level) and the
/// profit is the benefit `G_i(r_{i,j})`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Item {
    /// Capacity consumed when this item is chosen. Must be finite and
    /// non-negative; items heavier than the capacity are legal but can
    /// never be part of a feasible selection.
    pub weight: f64,
    /// Value gained when this item is chosen. Must be finite and
    /// non-negative.
    pub profit: f64,
}

impl Item {
    /// Creates an item.
    pub fn new(weight: f64, profit: f64) -> Self {
        Item { weight, profit }
    }
}

/// A validated MCKP instance: a list of classes (each a non-empty list of
/// [`Item`]s) and a capacity; a solution picks exactly one item per class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MckpInstance {
    classes: Vec<Vec<Item>>,
    capacity: f64,
}

impl MckpInstance {
    /// Creates and validates an instance.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::BadInstance`] when:
    /// * there are no classes, or some class is empty;
    /// * any weight/profit is negative, NaN or infinite;
    /// * the capacity is negative or not finite.
    pub fn new(classes: Vec<Vec<Item>>, capacity: f64) -> Result<Self, SolveError> {
        if !capacity.is_finite() || capacity < 0.0 {
            return Err(SolveError::bad(format!("capacity {capacity} invalid")));
        }
        if classes.is_empty() {
            return Err(SolveError::bad("instance has no classes"));
        }
        for (i, class) in classes.iter().enumerate() {
            if class.is_empty() {
                return Err(SolveError::bad(format!("class {i} is empty")));
            }
            for (j, item) in class.iter().enumerate() {
                if !item.weight.is_finite() || item.weight < 0.0 {
                    return Err(SolveError::bad(format!(
                        "class {i} item {j}: weight {} invalid",
                        item.weight
                    )));
                }
                if !item.profit.is_finite() || item.profit < 0.0 {
                    return Err(SolveError::bad(format!(
                        "class {i} item {j}: profit {} invalid",
                        item.profit
                    )));
                }
            }
        }
        Ok(MckpInstance { classes, capacity })
    }

    /// The classes of the instance.
    pub fn classes(&self) -> &[Vec<Item>] {
        &self.classes
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total number of items across all classes.
    pub fn num_items(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// The knapsack capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Looks up the item chosen by `selection` in class `class`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::BadInstance`] if the selection does not
    /// match the instance shape.
    pub fn chosen(&self, selection: &Selection, class: usize) -> Result<Item, SolveError> {
        let items = self
            .classes
            .get(class)
            .ok_or_else(|| SolveError::bad(format!("class {class} out of range")))?;
        let j = selection
            .choices()
            .get(class)
            .copied()
            .ok_or_else(|| SolveError::bad(format!("selection covers no class {class}")))?;
        items
            .get(j)
            .copied()
            .ok_or_else(|| SolveError::bad(format!("class {class}: item {j} out of range")))
    }

    /// Folds a selection through `field` (weight or profit), validating
    /// the shape as it goes.
    fn selection_sum(
        &self,
        selection: &Selection,
        field: fn(&Item) -> f64,
    ) -> Result<f64, SolveError> {
        if selection.len() != self.classes.len() {
            // analyze: allow(A7): error-path message; the hot path never formats
            return Err(SolveError::bad(format!(
                "selection shape mismatch: {} choices vs {} classes",
                selection.len(),
                self.classes.len()
            )));
        }
        let mut total = 0.0;
        for (i, (&j, class)) in selection.choices().iter().zip(&self.classes).enumerate() {
            let item = class
                .get(j)
                // analyze: allow(A7): error-path message inside ok_or_else; never runs on a feasible selection
                .ok_or_else(|| SolveError::bad(format!("class {i}: item {j} out of range")))?;
            total += field(item);
        }
        Ok(total)
    }

    /// Total weight of a selection.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::BadInstance`] if the selection does not
    /// match the instance shape.
    pub fn selection_weight(&self, selection: &Selection) -> Result<f64, SolveError> {
        self.selection_sum(selection, |it| it.weight)
    }

    /// Total profit of a selection.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::BadInstance`] if the selection does not
    /// match the instance shape.
    pub fn selection_profit(&self, selection: &Selection) -> Result<f64, SolveError> {
        self.selection_sum(selection, |it| it.profit)
    }

    /// Whether a selection fits within the capacity. Shape mismatches are
    /// simply infeasible.
    pub fn is_feasible(&self, selection: &Selection) -> bool {
        self.selection_weight(selection)
            .is_ok_and(|w| w <= self.capacity)
    }

    /// The selection that takes the minimum-weight item in every class
    /// (ties broken by higher profit). This is the cheapest possible
    /// selection: the instance is feasible iff this selection is.
    pub fn min_weight_selection(&self) -> Selection {
        let choices = self
            .classes
            .iter()
            .map(|class| {
                class
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        a.weight
                            .total_cmp(&b.weight)
                            .then(b.profit.total_cmp(&a.profit))
                    })
                    .map(|(j, _)| j)
                    // Classes are validated non-empty; the fallback index
                    // is unreachable and keeps this path total (lint L3).
                    .unwrap_or(0)
            })
            .collect();
        Selection::new(choices)
    }

    /// Whether *any* feasible selection exists.
    pub fn has_feasible_selection(&self) -> bool {
        self.is_feasible(&self.min_weight_selection())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class() -> MckpInstance {
        MckpInstance::new(
            vec![
                vec![Item::new(0.2, 1.0), Item::new(0.6, 5.0)],
                vec![Item::new(0.3, 2.0), Item::new(0.7, 4.0)],
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(MckpInstance::new(vec![], 1.0).is_err());
        assert!(MckpInstance::new(vec![vec![]], 1.0).is_err());
        assert!(MckpInstance::new(vec![vec![Item::new(-0.1, 1.0)]], 1.0).is_err());
        assert!(MckpInstance::new(vec![vec![Item::new(0.1, -1.0)]], 1.0).is_err());
        assert!(MckpInstance::new(vec![vec![Item::new(f64::NAN, 1.0)]], 1.0).is_err());
        assert!(MckpInstance::new(vec![vec![Item::new(0.1, 1.0)]], -1.0).is_err());
        assert!(MckpInstance::new(vec![vec![Item::new(0.1, 1.0)]], f64::INFINITY).is_err());
        assert!(MckpInstance::new(vec![vec![Item::new(0.1, 1.0)]], 0.0).is_ok());
    }

    #[test]
    fn weight_profit_accounting() {
        let inst = two_class();
        let sel = Selection::new(vec![1, 0]);
        assert!((inst.selection_weight(&sel).unwrap() - 0.9).abs() < 1e-12);
        assert!((inst.selection_profit(&sel).unwrap() - 7.0).abs() < 1e-12);
        assert!(inst.is_feasible(&sel));
        let heavy = Selection::new(vec![1, 1]);
        assert!(!inst.is_feasible(&heavy));
    }

    #[test]
    fn min_weight_selection_prefers_light_then_profit() {
        let inst = MckpInstance::new(
            vec![vec![
                Item::new(0.5, 1.0),
                Item::new(0.2, 3.0),
                Item::new(0.2, 7.0), // same weight, more profit -> preferred
            ]],
            1.0,
        )
        .unwrap();
        let sel = inst.min_weight_selection();
        assert_eq!(sel.choice(0), 2);
    }

    #[test]
    fn feasibility_of_instance() {
        let inst = MckpInstance::new(
            vec![vec![Item::new(0.9, 1.0)], vec![Item::new(0.9, 1.0)]],
            1.0,
        )
        .unwrap();
        assert!(!inst.has_feasible_selection());
        assert!(two_class().has_feasible_selection());
    }

    #[test]
    fn shape_mismatch_detected() {
        let inst = two_class();
        let wrong = Selection::new(vec![0]);
        assert!(!inst.is_feasible(&wrong));
        assert!(inst.selection_weight(&wrong).is_err());
        let out_of_range = Selection::new(vec![0, 5]);
        assert!(!inst.is_feasible(&out_of_range));
        assert!(inst.selection_profit(&out_of_range).is_err());
        assert!(inst.chosen(&out_of_range, 1).is_err());
        assert!(inst.chosen(&out_of_range, 7).is_err());
    }

    #[test]
    fn counts() {
        let inst = two_class();
        assert_eq!(inst.num_classes(), 2);
        assert_eq!(inst.num_items(), 4);
        assert_eq!(inst.capacity(), 1.0);
        assert_eq!(
            inst.chosen(&Selection::new(vec![1, 0]), 0).unwrap(),
            Item::new(0.6, 5.0)
        );
    }
}
