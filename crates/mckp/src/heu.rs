//! HEU-OE: the greedy + opportunistic-exchange MCKP heuristic.
//!
//! The paper adopts "the HEU-OE heuristic algorithm from \[Khan 1998\]" as
//! its fast near-optimal solver. The algorithm:
//!
//! 1. **Prune** each class to its LP-undominated items (upper convex hull
//!    of `(weight, profit)`).
//! 2. **Base**: select the lightest hull item of every class.
//! 3. **Greedy upgrades** (HEU): repeatedly apply, among the next hull
//!    upgrade of every class, the one with the highest incremental
//!    efficiency `Δprofit/Δweight` that still fits; upgrades that do not
//!    fit are discarded for good (their class stays at its current level).
//! 4. **Opportunistic exchange** (OE): a local-improvement pass over *all*
//!    items (including LP-dominated ones, which the greedy can never
//!    reach): while some single-class swap raises profit without
//!    exceeding the capacity, apply the best such swap.
//!
//! The heuristic runs in `O(total_items · log total_items)` for the greedy
//! phase plus `O(passes · total_items)` for the exchange phase and is
//! near-optimal on the benefit-function instances of the paper (see the
//! Figure 3 bench, where it tracks the DP within a few percent).

use crate::error::SolveError;
use crate::instance::MckpInstance;
use crate::lp::convex_hull_indices;
use crate::solution::Selection;
use crate::Solver;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The HEU-OE heuristic solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeuOeSolver {
    exchange: bool,
    max_exchange_passes: usize,
}

impl HeuOeSolver {
    /// Full HEU-OE: greedy plus opportunistic exchange (the paper's
    /// configuration).
    pub fn new() -> Self {
        HeuOeSolver {
            exchange: true,
            max_exchange_passes: 64,
        }
    }

    /// Greedy-only variant (no exchange pass); used by the ablation bench.
    pub fn without_exchange() -> Self {
        HeuOeSolver {
            exchange: false,
            max_exchange_passes: 0,
        }
    }

    /// Limits the number of exchange passes (each pass applies the single
    /// best improving swap).
    pub fn with_max_exchange_passes(mut self, passes: usize) -> Self {
        self.max_exchange_passes = passes;
        self
    }
}

impl Default for HeuOeSolver {
    fn default() -> Self {
        HeuOeSolver::new()
    }
}

/// Heap entry: a candidate upgrade for `class` to hull position `pos`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Upgrade {
    efficiency: f64,
    class: usize,
    pos: usize,
    d_weight: f64,
    d_profit: f64,
}

impl Eq for Upgrade {}

impl Ord for Upgrade {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by efficiency; deterministic tie-break by class/pos.
        self.efficiency
            .total_cmp(&other.efficiency)
            .then(other.class.cmp(&self.class))
            .then(other.pos.cmp(&self.pos))
    }
}

impl PartialOrd for Upgrade {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Solver for HeuOeSolver {
    fn solve(&self, instance: &MckpInstance) -> Result<Selection, SolveError> {
        let classes = instance.classes();
        let capacity = instance.capacity();
        let hulls: Vec<Vec<usize>> = classes.iter().map(|c| convex_hull_indices(c)).collect();

        // Base: lightest hull item per class.
        let mut picks: Vec<usize> = hulls.iter().map(|h| h[0]).collect();
        let mut weight: f64 = picks
            .iter()
            .enumerate()
            .map(|(c, &j)| classes[c][j].weight)
            .sum();
        if weight > capacity {
            // The base is the lightest possible selection up to profit
            // tie-breaks, so exceeding here means the instance is
            // infeasible (hull[0] is a minimum-weight item of the class).
            return Err(SolveError::Infeasible);
        }

        // Greedy upgrades along the hulls.
        let upgrade = |c: usize, pos: usize| -> Upgrade {
            let prev = classes[c][hulls[c][pos - 1]];
            let next = classes[c][hulls[c][pos]];
            let d_weight = next.weight - prev.weight;
            let d_profit = next.profit - prev.profit;
            Upgrade {
                efficiency: if d_weight > 0.0 {
                    d_profit / d_weight
                } else {
                    f64::MAX
                },
                class: c,
                pos,
                d_weight,
                d_profit,
            }
        };
        let mut heap: BinaryHeap<Upgrade> = (0..classes.len())
            .filter(|&c| hulls[c].len() > 1)
            .map(|c| upgrade(c, 1))
            .collect();
        let mut level: Vec<usize> = vec![0; classes.len()];
        // analyze: allow(A8): every pop discards a stale entry or advances level[class]; at most one push per pop, bounded by Σ hull lengths
        while let Some(up) = heap.pop() {
            if up.pos != level[up.class] + 1 {
                continue; // stale entry from a discarded branch
            }
            if weight + up.d_weight <= capacity {
                weight += up.d_weight;
                level[up.class] = up.pos;
                picks[up.class] = hulls[up.class][up.pos];
                if up.pos + 1 < hulls[up.class].len() {
                    heap.push(upgrade(up.class, up.pos + 1));
                }
            }
            // Upgrades that do not fit are dropped (HEU discards them).
        }

        // Opportunistic exchange over all items.
        if self.exchange {
            let mut profit: f64 = picks
                .iter()
                .enumerate()
                .map(|(c, &j)| classes[c][j].profit)
                .sum();
            for _ in 0..self.max_exchange_passes {
                let mut best: Option<(usize, usize, f64, f64)> = None; // class, item, d_profit, d_weight
                for (c, class) in classes.iter().enumerate() {
                    let cur = class[picks[c]];
                    for (j, item) in class.iter().enumerate() {
                        if j == picks[c] {
                            continue;
                        }
                        let d_w = item.weight - cur.weight;
                        let d_p = item.profit - cur.profit;
                        if d_p > 1e-15 && weight + d_w <= capacity {
                            let better = match best {
                                None => true,
                                Some((_, _, bp, bw)) => d_p > bp || (d_p == bp && d_w < bw),
                            };
                            if better {
                                best = Some((c, j, d_p, d_w));
                            }
                        }
                    }
                }
                match best {
                    Some((c, j, d_p, d_w)) => {
                        picks[c] = j;
                        weight += d_w;
                        profit += d_p;
                    }
                    None => break,
                }
            }
            let _ = profit;
        }

        let selection = Selection::new(picks);
        debug_assert!(instance.is_feasible(&selection));
        Ok(selection)
    }

    fn name(&self) -> &'static str {
        if self.exchange {
            "heu-oe"
        } else {
            "heu"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Item;
    use crate::lp::lp_relaxation;

    fn inst(classes: Vec<Vec<Item>>, capacity: f64) -> MckpInstance {
        MckpInstance::new(classes, capacity).unwrap()
    }

    #[test]
    fn finds_obvious_optimum() {
        let i = inst(
            vec![
                vec![Item::new(0.2, 1.0), Item::new(0.6, 5.0)],
                vec![Item::new(0.3, 2.0), Item::new(0.7, 4.0)],
            ],
            1.0,
        );
        let sel = HeuOeSolver::new().solve(&i).unwrap();
        assert_eq!(sel.choices(), &[1, 0]);
    }

    #[test]
    fn infeasible_detected() {
        let i = inst(
            vec![vec![Item::new(0.7, 1.0)], vec![Item::new(0.7, 1.0)]],
            1.0,
        );
        assert_eq!(
            HeuOeSolver::new().solve(&i).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn feasible_base_returned_when_no_upgrades_fit() {
        let i = inst(
            vec![
                vec![Item::new(0.4, 1.0), Item::new(0.9, 10.0)],
                vec![Item::new(0.5, 1.0), Item::new(0.9, 10.0)],
            ],
            1.0,
        );
        let sel = HeuOeSolver::new().solve(&i).unwrap();
        assert!(i.is_feasible(&sel));
        assert_eq!(sel.choices(), &[0, 0]);
    }

    #[test]
    fn exchange_reaches_lp_dominated_item() {
        // Class 0: item 1 is LP-dominated (below the chord) but is the best
        // integer choice once class 1 ate most of the capacity.
        let i = inst(
            vec![
                vec![
                    Item::new(0.0, 0.0),
                    Item::new(0.35, 4.0), // strictly below the chord (0,0)-(0.5,7.0)
                    Item::new(0.5, 7.0),
                ],
                vec![Item::new(0.6, 10.0)],
            ],
            1.0,
        );
        // Greedy hull path: class0 can only jump to (0.5, 7.0), which does
        // not fit next to class1's 0.6, so greedy leaves class0 at (0,0).
        // Exchange should find the LP-dominated (0.35, 4.0).
        let greedy = HeuOeSolver::without_exchange().solve(&i).unwrap();
        assert_eq!(greedy.choices()[0], 0);
        let full = HeuOeSolver::new().solve(&i).unwrap();
        assert_eq!(full.choices()[0], 1);
        assert!(i.selection_profit(&full).unwrap() > i.selection_profit(&greedy).unwrap());
    }

    #[test]
    fn result_bounded_by_lp_relaxation() {
        let i = inst(
            vec![
                vec![
                    Item::new(0.1, 1.0),
                    Item::new(0.4, 3.5),
                    Item::new(0.8, 5.0),
                ],
                vec![Item::new(0.2, 2.0), Item::new(0.5, 4.0)],
                vec![Item::new(0.05, 0.5), Item::new(0.3, 2.8)],
            ],
            1.0,
        );
        let sel = HeuOeSolver::new().solve(&i).unwrap();
        let lp = lp_relaxation(&i).unwrap();
        assert!(i.selection_profit(&sel).unwrap() <= lp.upper_bound + 1e-9);
        assert!(i.is_feasible(&sel));
    }

    #[test]
    fn exchange_pass_limit_respected() {
        let i = inst(
            vec![
                vec![Item::new(0.1, 0.0), Item::new(0.2, 1.0)],
                vec![Item::new(0.1, 0.0), Item::new(0.2, 1.0)],
            ],
            1.0,
        );
        // Zero passes behaves like greedy-only even with exchange enabled.
        let sel = HeuOeSolver::new()
            .with_max_exchange_passes(0)
            .solve(&i)
            .unwrap();
        assert!(i.is_feasible(&sel));
    }

    #[test]
    fn solver_names() {
        assert_eq!(HeuOeSolver::new().name(), "heu-oe");
        assert_eq!(HeuOeSolver::without_exchange().name(), "heu");
    }

    #[test]
    fn single_class_picks_best_fitting_item() {
        let i = inst(
            vec![vec![
                Item::new(0.2, 1.0),
                Item::new(0.9, 9.0),
                Item::new(2.0, 100.0),
            ]],
            1.0,
        );
        let sel = HeuOeSolver::new().solve(&i).unwrap();
        assert_eq!(sel.choices(), &[1]);
    }
}
