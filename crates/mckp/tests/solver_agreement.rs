//! Property tests: the four MCKP solvers agree where they must.
//!
//! * `brute`, `branch_bound` and (up to grid rounding) `dp` are exact and
//!   must produce equal profits on random small instances.
//! * `heu_oe` is heuristic: feasible and bounded by the exact optimum and
//!   the LP upper bound.

use proptest::prelude::*;
use rto_mckp::lp::lp_relaxation;
use rto_mckp::{
    BranchBoundSolver, BruteForceSolver, DpSolver, FptasSolver, HeuOeSolver, Item, MckpInstance,
    SolveError, Solver,
};

/// Strategy: a random instance with 1..=5 classes of 1..=5 items, weights
/// in [0, 0.6], profits in [0, 10], capacity 1.
fn small_instance() -> impl Strategy<Value = MckpInstance> {
    prop::collection::vec(
        prop::collection::vec((0.0f64..0.6, 0.0f64..10.0), 1..=5),
        1..=5,
    )
    .prop_map(|raw| {
        let classes = raw
            .into_iter()
            .map(|c| c.into_iter().map(|(w, p)| Item::new(w, p)).collect())
            .collect();
        MckpInstance::new(classes, 1.0).expect("generated instance is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn exact_solvers_agree(inst in small_instance()) {
        let brute = BruteForceSolver::default().solve(&inst);
        let bb = BranchBoundSolver::new().solve(&inst);
        match (brute, bb) {
            (Ok(a), Ok(b)) => {
                let pa = inst.selection_profit(&a).unwrap();
                let pb = inst.selection_profit(&b).unwrap();
                prop_assert!((pa - pb).abs() < 1e-9, "brute {pa} vs bb {pb}");
                prop_assert!(inst.is_feasible(&a));
                prop_assert!(inst.is_feasible(&b));
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (x, y) => prop_assert!(false, "solver disagreement: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn dp_close_to_exact_and_feasible(inst in small_instance()) {
        let dp = DpSolver::default().solve(&inst);
        let brute = BruteForceSolver::default().solve(&inst);
        match (dp, brute) {
            (Ok(a), Ok(b)) => {
                let pa = inst.selection_profit(&a).unwrap();
                let pb = inst.selection_profit(&b).unwrap();
                prop_assert!(inst.is_feasible(&a));
                prop_assert!(pa <= pb + 1e-9, "dp {pa} beat exact {pb}");
                // The DP rounds weights up onto a grid of
                // `capacity / resolution` cells; a selection inflates by at
                // most one cell per class. Two sound bounds follow:
                let cell = inst.capacity() / DpSolver::DEFAULT_RESOLUTION as f64;
                let slack_cap = inst.capacity() - inst.num_classes() as f64 * cell;
                if inst.selection_weight(&b).unwrap() <= slack_cap {
                    // The true optimum survives round-up, so the DP must
                    // find it (it is exact on the rounded instance).
                    prop_assert!(pa >= pb - 1e-9, "dp {pa} lost reachable optimum {pb}");
                } else if let Ok(safe) = BruteForceSolver::default()
                    .solve(&MckpInstance::new(inst.classes().to_vec(), slack_cap).unwrap())
                {
                    // Razor-thin fit: the optimum may be rounded away, but
                    // every selection fitting with full rounding slack is
                    // still representable, so the DP must beat the best one.
                    let floor = inst.selection_profit(&safe).unwrap();
                    prop_assert!(pa >= floor - 1e-9, "dp {pa} below sound floor {floor}");
                }
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            // DP may declare a razor-thin instance infeasible due to
            // round-up; accept only if the true fit is extremely tight.
            (Err(SolveError::Infeasible), Ok(b)) => {
                let w = inst.selection_weight(&inst.min_weight_selection()).unwrap();
                prop_assert!(w > 1.0 - 0.01, "dp infeasible but min weight {w}");
                let _ = b;
            }
            (x, y) => prop_assert!(false, "unexpected: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn heuristic_is_feasible_and_bounded(inst in small_instance()) {
        match HeuOeSolver::new().solve(&inst) {
            Ok(sel) => {
                prop_assert!(inst.is_feasible(&sel));
                let profit = inst.selection_profit(&sel).unwrap();
                let lp = lp_relaxation(&inst).expect("heuristic succeeded, LP must too");
                prop_assert!(profit <= lp.upper_bound + 1e-9);
                if let Ok(exact) = BruteForceSolver::default().solve(&inst) {
                    prop_assert!(profit <= inst.selection_profit(&exact).unwrap() + 1e-9);
                }
            }
            Err(SolveError::Infeasible) => {
                prop_assert!(!inst.has_feasible_selection());
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    #[test]
    fn greedy_never_beats_full_heu_oe(inst in small_instance()) {
        let greedy = HeuOeSolver::without_exchange().solve(&inst);
        let full = HeuOeSolver::new().solve(&inst);
        if let (Ok(g), Ok(f)) = (greedy, full) {
            prop_assert!(
                inst.selection_profit(&f).unwrap() >= inst.selection_profit(&g).unwrap() - 1e-12
            );
        }
    }

    #[test]
    fn fptas_guarantee_holds(inst in small_instance(), eps_pct in 5u32..50) {
        let eps = eps_pct as f64 / 100.0;
        let fptas = FptasSolver::new(eps);
        match (fptas.solve(&inst), BruteForceSolver::default().solve(&inst)) {
            (Ok(approx), Ok(exact)) => {
                let pa = inst.selection_profit(&approx).unwrap();
                let pe = inst.selection_profit(&exact).unwrap();
                prop_assert!(inst.is_feasible(&approx));
                prop_assert!(pa <= pe + 1e-9, "fptas {pa} beat exact {pe}");
                prop_assert!(
                    pa >= (1.0 - eps) * pe - 1e-9,
                    "fptas {pa} below (1-{eps}) x {pe}"
                );
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (x, y) => prop_assert!(false, "disagreement: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn infeasibility_is_consistent(inst in small_instance()) {
        let feasible = inst.has_feasible_selection();
        for solver in [
            &BruteForceSolver::default() as &dyn Solver,
            &BranchBoundSolver::new(),
            &HeuOeSolver::new(),
        ] {
            match solver.solve(&inst) {
                Ok(_) => prop_assert!(feasible, "{} solved infeasible instance", solver.name()),
                Err(SolveError::Infeasible) => {
                    prop_assert!(!feasible, "{} failed feasible instance", solver.name())
                }
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
    }
}
