//! CLI for `rto-lint`.
//!
//! ```text
//! cargo run -p rto-lint -- --workspace             lint every workspace crate
//! cargo run -p rto-lint -- crates/core/src/dbf.rs  lint specific files
//! cargo run -p rto-lint -- --workspace --json      machine-readable output
//! cargo run -p rto-lint -- --workspace --allow other.toml
//! ```
//!
//! Exit codes: `0` clean (warnings allowed), `1` at least one deny
//! finding, `2` usage / IO / allowlist error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rto_lint::{allow, collect_workspace_files, run, to_json, Severity};

const USAGE: &str = "usage: rto-lint [--workspace] [--json] [--allow <file>] [paths...]";

struct Args {
    workspace: bool,
    json: bool,
    allow_path: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        json: false,
        allow_path: None,
        paths: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--allow" => {
                let p = it.next().ok_or("--allow requires a file argument")?;
                args.allow_path = Some(PathBuf::from(p));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"));
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if !args.workspace && args.paths.is_empty() {
        return Err(format!("nothing to lint\n{USAGE}"));
    }
    Ok(args)
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn real_main() -> Result<bool, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;

    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = find_workspace_root(&cwd).unwrap_or_else(|| cwd.clone());

    let files = if args.workspace {
        let mut files = collect_workspace_files(&root)?;
        for p in &args.paths {
            files.push(p.clone());
        }
        files
    } else {
        args.paths.clone()
    };

    let allow_file = args
        .allow_path
        .unwrap_or_else(|| root.join("lint.allow.toml"));
    let allowlist = if allow_file.is_file() {
        let text = std::fs::read_to_string(&allow_file)
            .map_err(|e| format!("cannot read {}: {e}", allow_file.display()))?;
        allow::parse(&text)?
    } else {
        Vec::new()
    };

    let report = run(&root, &files, &allowlist)?;

    if args.json {
        println!("{}", to_json(&report.findings));
    } else {
        for f in &report.findings {
            println!(
                "{}:{}: {} [{}] {}",
                f.path,
                f.line,
                f.rule,
                f.severity.as_str(),
                f.message
            );
        }
        let denies = report
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count();
        let warns = report.findings.len() - denies;
        eprintln!(
            "rto-lint: {} file(s), {} deny, {} warn, {} allowlisted",
            report.files, denies, warns, report.allowlisted
        );
    }
    Ok(report.has_deny())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("rto-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
