//! Parser for the committed allowlist file (`lint.allow.toml`).
//!
//! The allowlist is the *reviewed* escape hatch: findings that are
//! understood, justified, and accepted live here, with a mandatory
//! human-readable reason. The file is a strict subset of TOML —
//! `[[allow]]` array-of-tables with `key = "string"` pairs — parsed by
//! hand so the linter stays dependency-free:
//!
//! ```toml
//! # lint.allow.toml
//! [[allow]]
//! path = "crates/obs/src/metrics.rs"
//! rule = "L1"
//! reason = "histogram bucket math on already-recorded ns samples"
//! ```
//!
//! Parse errors (unknown keys, missing `path`/`rule`, an empty
//! `reason`) fail the whole lint run: a malformed allowlist must never
//! silently allow everything.

use crate::rules::Finding;

/// One reviewed suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative path suffix the entry applies to, or a
    /// directory prefix when it ends with `/` (see [`Self::covers`]).
    pub path: String,
    /// Rule id (`"L1"` … `"L6"`).
    pub rule: String,
    /// Mandatory justification.
    pub reason: String,
    /// Line in `lint.allow.toml` where the entry starts (for errors).
    pub defined_at: u32,
}

impl AllowEntry {
    /// Does this entry suppress `f`?
    #[must_use]
    pub fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule && self.covers(&f.path)
    }

    /// Does this entry's `path` cover the workspace-relative `path`?
    ///
    /// Two forms are accepted: a file pattern matches exactly or as a
    /// path suffix (`src/dp.rs`), and a pattern ending in `/` is a
    /// directory prefix covering every file under it
    /// (`crates/mckp/src/`). Directory entries keep the allowlist
    /// small when one justification holds for a whole kernel family.
    #[must_use]
    pub fn covers(&self, path: &str) -> bool {
        if self.path.ends_with('/') {
            path.starts_with(&self.path)
        } else {
            path == self.path || path.ends_with(&self.path)
        }
    }
}

/// Parse the allowlist. Returns entries or a human-readable error.
///
/// # Errors
///
/// On any line that is not a comment, blank, `[[allow]]` header, or
/// `key = "value"` pair; on unknown keys; and on entries missing
/// `path`, `rule`, or a non-empty `reason`.
pub fn parse(src: &str) -> Result<Vec<AllowEntry>, String> {
    /// Partially parsed entry: start line plus optional path/rule/reason.
    type OpenEntry = (u32, Option<String>, Option<String>, Option<String>);

    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut open: Option<OpenEntry> = None;

    let finish =
        |open: &mut Option<OpenEntry>, entries: &mut Vec<AllowEntry>| -> Result<(), String> {
            if let Some((at, path, rule, reason)) = open.take() {
                let path = path.ok_or(format!("allowlist entry at line {at}: missing `path`"))?;
                let rule = rule.ok_or(format!("allowlist entry at line {at}: missing `rule`"))?;
                let reason = reason.filter(|r| !r.trim().is_empty()).ok_or(format!(
                    "allowlist entry at line {at}: missing or empty `reason`"
                ))?;
                entries.push(AllowEntry {
                    path,
                    rule,
                    reason,
                    defined_at: at,
                });
            }
            Ok(())
        };

    for (idx, raw) in src.lines().enumerate() {
        let lineno = u32::try_from(idx).unwrap_or(u32::MAX).saturating_add(1);
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut open, &mut entries)?;
            open = Some((lineno, None, None, None));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "allowlist line {lineno}: expected `key = \"value\"`, got `{line}`"
            ));
        };
        let Some((_, p, r, s)) = open.as_mut() else {
            return Err(format!(
                "allowlist line {lineno}: `{}` outside an [[allow]] entry",
                key.trim()
            ));
        };
        let value = value.trim();
        let unquoted = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or(format!(
                "allowlist line {lineno}: value must be a double-quoted string"
            ))?;
        match key.trim() {
            "path" => *p = Some(unquoted.to_string()),
            "rule" => *r = Some(unquoted.to_string()),
            "reason" => *s = Some(unquoted.to_string()),
            other => {
                return Err(format!("allowlist line {lineno}: unknown key `{other}`"));
            }
        }
    }
    finish(&mut open, &mut entries)?;
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Severity};

    fn finding(path: &str, rule: &'static str) -> Finding {
        Finding {
            path: path.to_string(),
            line: 1,
            rule,
            severity: Severity::Deny,
            message: String::new(),
        }
    }

    #[test]
    fn parses_entries_and_matches() {
        let src = r#"
# comment
[[allow]]
path = "crates/obs/src/metrics.rs"
rule = "L1"
reason = "bucket math on recorded samples"

[[allow]]
path = "crates/sim/src/render.rs"
rule = "L3"
reason = "ASCII rendering indices are clamped"
"#;
        let entries = parse(src).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].matches(&finding("crates/obs/src/metrics.rs", "L1")));
        assert!(!entries[0].matches(&finding("crates/obs/src/metrics.rs", "L2")));
        assert!(!entries[0].matches(&finding("crates/obs/src/sink.rs", "L1")));
        assert_eq!(entries[1].defined_at, 8);
    }

    #[test]
    fn directory_entries_cover_files_below_them_only() {
        let src = r#"
[[allow]]
path = "crates/mckp/src/"
rule = "L3"
reason = "kernel family indexes tables allocated in the same scope"
"#;
        let entries = parse(src).unwrap();
        assert!(entries[0].matches(&finding("crates/mckp/src/dp.rs", "L3")));
        assert!(entries[0].matches(&finding("crates/mckp/src/lp.rs", "L3")));
        // Wrong rule, sibling crate, and a non-prefix mention all miss.
        assert!(!entries[0].matches(&finding("crates/mckp/src/dp.rs", "L1")));
        assert!(!entries[0].matches(&finding("crates/sim/src/system.rs", "L3")));
        assert!(!entries[0].matches(&finding("crates/mckp/srcs/dp.rs", "L3")));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let src = "[[allow]]\npath = \"a.rs\"\nrule = \"L1\"\n";
        assert!(parse(src).unwrap_err().contains("reason"));
        let src = "[[allow]]\npath = \"a.rs\"\nrule = \"L1\"\nreason = \"  \"\n";
        assert!(parse(src).unwrap_err().contains("reason"));
    }

    #[test]
    fn unknown_key_and_stray_pair_are_errors() {
        assert!(parse("[[allow]]\nfoo = \"x\"\n")
            .unwrap_err()
            .contains("unknown key"));
        assert!(parse("path = \"x\"\n").unwrap_err().contains("outside"));
        assert!(parse("[[allow]]\npath = x\n")
            .unwrap_err()
            .contains("double-quoted"));
    }
}
