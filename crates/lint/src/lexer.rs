//! A small, lossless-enough Rust tokenizer for the lint pass.
//!
//! This is *not* a full Rust lexer: it produces exactly the token stream
//! the rules in [`crate::rules`] need — identifiers, normalized
//! multi-character punctuation, integer/float literals, opaque
//! string/char literals, and lifetimes — while preserving comments
//! (with line numbers) so that inline waivers
//! (`// lint: allow(Lx): reason`, `// lint: relaxed-ok: reason`) can be
//! honoured. Everything operates on `char`s, so multi-byte UTF-8 in
//! strings and comments is handled without byte-offset bookkeeping.
//!
//! Design notes:
//!
//! * **Strings are opaque.** A `"..."`/`r#"..."#` literal becomes a
//!   single [`TokKind::Str`] token; rules never match inside strings, so
//!   a diagnostic message that *mentions* `unwrap()` cannot trip L3.
//! * **Maximal-munch punctuation.** `==`, `!=`, `..=`, `->`, `::`,
//!   `+=` … are single tokens, so the rules can reason about operator
//!   adjacency without re-parsing.
//! * **Floats vs. ranges vs. method calls.** `1.5` is one float token;
//!   `1..5` is `1`, `..`, `5`; `1.max(2)` is `1`, `.`, `max`, … — the
//!   lexer only consumes a `.` into a number when the next character is
//!   a digit (or end-of-expression, as in `1.`).

use std::collections::HashMap;

/// Token classification. `Punct` text is the normalized operator
/// spelling (`"=="`, `"+="`, `"::"`, …) or a single character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation / operator (normalized multi-char).
    Punct,
    /// Integer literal (including suffixed, hex/oct/bin).
    Int,
    /// Floating literal (contains `.`, exponent, or an `f32`/`f64` suffix).
    Float,
    /// String / byte-string literal (content discarded).
    Str,
    /// Character literal (content discarded).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Exact source spelling (opaque placeholder for `Str`/`Char`).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this token is punctuation with exactly this spelling.
    #[must_use]
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// True if this token is an identifier with exactly this spelling.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Tokenized file: the token stream plus per-line comment text.
///
/// `comments[line]` is the concatenation of every comment that *starts*
/// on `line` (1-based). Waiver lookup checks the finding's line and the
/// line directly above it.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, in source order.
    pub tokens: Vec<Token>,
    /// Per-line comment text (keyed by 1-based start line).
    pub comments: HashMap<u32, String>,
}

impl Lexed {
    /// Comment text starting on `line`, or `""`.
    #[must_use]
    pub fn comment_on(&self, line: u32) -> &str {
        self.comments.get(&line).map_or("", String::as_str)
    }
}

/// Multi-character operators, longest first (maximal munch).
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=", "::", "->", "=>", "..",
];

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails: unrecognized characters become
/// single-character punctuation, and unterminated literals are consumed
/// to end-of-file (good enough for a linter that only runs on code the
/// compiler already accepted).
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.entry(line).or_default().push_str(&text);
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0u32;
            while let Some(ch) = cur.peek(0) {
                if ch == '/' && cur.peek(1) == Some('*') {
                    depth += 1;
                    text.push_str("/*");
                    cur.bump();
                    cur.bump();
                } else if ch == '*' && cur.peek(1) == Some('/') {
                    depth -= 1;
                    text.push_str("*/");
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(ch);
                    cur.bump();
                }
            }
            out.comments.entry(line).or_default().push_str(&text);
            continue;
        }
        // Raw / byte strings: r"..", r#".."#, br"..", b"..".
        if (c == 'r' || c == 'b') && matches!(cur.peek(1), Some('"' | '#' | 'r')) {
            if let Some(len) = raw_or_byte_string_len(&cur) {
                for _ in 0..len {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
                continue;
            }
        }
        // Plain strings.
        if c == '"' {
            cur.bump();
            consume_quoted(&mut cur, '"');
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let next = cur.peek(1);
            let after = cur.peek(2);
            let is_lifetime = matches!(next, Some(n) if is_ident_start(n)) && after != Some('\'');
            cur.bump(); // the quote
            if is_lifetime {
                let mut text = String::from("'");
                while let Some(ch) = cur.peek(0) {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                });
            } else {
                consume_quoted(&mut cur, '\'');
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
            }
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text,
                line,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let tok = lex_number(&mut cur, line);
            out.tokens.push(tok);
            continue;
        }
        // Multi-char punctuation (maximal munch).
        let mut matched = false;
        for p in PUNCTS {
            let plen = p.chars().count();
            if (0..plen).all(|i| cur.peek(i) == p.chars().nth(i)) {
                for _ in 0..plen {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (*p).to_string(),
                    line,
                });
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        // Single-char punctuation (or anything else).
        cur.bump();
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
    }
    out
}

/// If the cursor sits on a raw/byte-string opener, return its total
/// char length; otherwise `None`.
fn raw_or_byte_string_len(cur: &Cursor) -> Option<usize> {
    let mut i = 0;
    if cur.peek(i) == Some('b') {
        i += 1;
    }
    let raw = cur.peek(i) == Some('r');
    if raw {
        i += 1;
    }
    let mut hashes = 0;
    while cur.peek(i) == Some('#') {
        hashes += 1;
        i += 1;
    }
    if cur.peek(i) != Some('"') {
        return None;
    }
    if !raw && hashes > 0 {
        return None; // `b#` is not a string
    }
    i += 1;
    // Scan for the closing quote.
    loop {
        match cur.peek(i) {
            None => return Some(i), // unterminated; consume to EOF
            Some('\\') if !raw => {
                i += 2;
            }
            Some('"') => {
                let mut close = 0;
                while close < hashes && cur.peek(i + 1 + close) == Some('#') {
                    close += 1;
                }
                if close == hashes {
                    return Some(i + 1 + hashes);
                }
                i += 1;
            }
            Some(_) => {
                i += 1;
            }
        }
    }
}

/// Consume a quoted literal body up to (and including) the unescaped
/// terminator.
fn consume_quoted(cur: &mut Cursor, term: char) {
    while let Some(ch) = cur.bump() {
        if ch == '\\' {
            cur.bump();
        } else if ch == term {
            break;
        }
    }
}

fn lex_number(cur: &mut Cursor, line: u32) -> Token {
    let mut text = String::new();
    let radix_prefix = cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b'));
    if radix_prefix {
        text.push(cur.bump().unwrap_or('0'));
        text.push(cur.bump().unwrap_or('x'));
    }
    let mut float = false;
    while let Some(ch) = cur.peek(0) {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            if !radix_prefix && (ch == 'e' || ch == 'E') {
                // Exponent only if followed by digit or sign+digit.
                let sign = matches!(cur.peek(1), Some('+' | '-'));
                let digit_at = usize::from(sign) + 1;
                if matches!(cur.peek(digit_at), Some(d) if d.is_ascii_digit()) {
                    float = true;
                    text.push(ch);
                    cur.bump();
                    if sign {
                        text.push(cur.bump().unwrap_or('+'));
                    }
                    continue;
                }
            }
            text.push(ch);
            cur.bump();
        } else if ch == '.' && !radix_prefix && !float {
            // `1.5` / `1.` are floats; `1..`, `1.max(…)` are not.
            match cur.peek(1) {
                Some(d) if d.is_ascii_digit() => {
                    float = true;
                    text.push(ch);
                    cur.bump();
                }
                Some(n) if n == '.' || is_ident_start(n) => break,
                _ => {
                    float = true;
                    text.push(ch);
                    cur.bump();
                    break;
                }
            }
        } else {
            break;
        }
    }
    let float = float || (!radix_prefix && (text.ends_with("f32") || text.ends_with("f64")));
    Token {
        kind: if float { TokKind::Float } else { TokKind::Int },
        text,
        line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn basic_stream() {
        let toks = kinds("let x_ns = a.as_ns() + 1;");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "x_ns", "=", "a", ".", "as_ns", "(", ")", "+", "1", ";"]
        );
    }

    #[test]
    fn float_vs_range_vs_method() {
        assert_eq!(
            kinds("1.5 1..5 1.max(2) 2. 1e9 0x1f 3f64"),
            vec![
                (TokKind::Float, "1.5".into()),
                (TokKind::Int, "1".into()),
                (TokKind::Punct, "..".into()),
                (TokKind::Int, "5".into()),
                (TokKind::Int, "1".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Ident, "max".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Int, "2".into()),
                (TokKind::Punct, ")".into()),
                (TokKind::Float, "2.".into()),
                (TokKind::Float, "1e9".into()),
                (TokKind::Int, "0x1f".into()),
                (TokKind::Float, "3f64".into()),
            ]
        );
    }

    #[test]
    fn strings_and_chars_are_opaque() {
        let toks = kinds(r#"let s = "x.unwrap() + y_ns"; let c = '+'; let l: &'static str = r#f;"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || (t != "unwrap" && t != "y_ns")));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Char));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'static"));
    }

    #[test]
    fn raw_strings() {
        let toks = kinds(r##"let s = r#"a "quoted" unwrap()"#; x"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "x"));
        assert!(!toks.iter().any(|(_, t)| t == "unwrap"));
    }

    #[test]
    fn comments_recorded_by_line() {
        let l = lex("let a = 1; // lint: allow(L3): reason\n/* block */ let b = 2;\n");
        assert!(l.comment_on(1).contains("lint: allow(L3): reason"));
        assert!(l.comment_on(2).contains("block"));
        assert_eq!(l.comment_on(3), "");
    }

    #[test]
    fn nested_block_comment() {
        let l = lex("/* outer /* inner */ still */ let x = 1;");
        assert!(l.comment_on(1).contains("inner"));
        assert!(l.tokens.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn multichar_puncts() {
        let texts: Vec<String> = lex("a == b != c -> d => e :: f ..= g += h")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, ["==", "!=", "->", "=>", "::", "..=", "+="]);
    }
}
