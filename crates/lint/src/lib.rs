//! `rto-lint` — domain-invariant static analysis for the rto workspace.
//!
//! The paper's guarantees are arithmetic: integer-nanosecond
//! demand-bound math (Theorems 1–3), densities computed from
//! non-negative slack, deterministic EDF tie-breaking. This crate
//! enforces the coding rules that keep those invariants true under
//! refactoring, *mechanically*, at CI time:
//!
//! | rule | scope | what it denies |
//! |------|-------|----------------|
//! | L1 | workspace (except `core/src/time.rs`) | raw `+ - * / %` on `*_ns` values / `as_ns()` results |
//! | L2 | workspace | `==` / `!=` against float literals |
//! | L3 | library crates | `unwrap` / `expect` / `panic!` family (deny); bare indexing (warn) |
//! | L4 | workspace (except `core/src/time.rs`) | lossy `as` casts on nanosecond values |
//! | L5 | `core`, `sim` | wall clock (`std::time`, `SystemTime`) |
//! | L6 | `obs` | `Ordering::Relaxed` without a `relaxed-ok` justification |
//!
//! Escape hatches, in order of preference:
//!
//! 1. **Fix the code.** Almost always possible; see the sweeps in the
//!    crates themselves.
//! 2. **Inline waiver** — `// lint: allow(Lx): <reason>` on the same
//!    line or the line above. For reviewed local exceptions where the
//!    code is right and the rule is conservative.
//! 3. **Allowlist** — a `[[allow]]` entry in `lint.allow.toml` with a
//!    mandatory reason, for whole-file/rule suppressions (kept ≤ 10 by
//!    policy; see `DESIGN.md` §8).
//!
//! The binary (`cargo run -p rto-lint -- --workspace`) exits non-zero
//! iff any *deny* finding survives waivers and the allowlist.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

pub use allow::AllowEntry;
pub use rules::{FileCtx, Finding, RuleId, Severity};

/// Directories whose `.rs` files are exempt from linting (test code,
/// fixtures, vendored shims, build output).
const SKIP_DIRS: &[&str] = &[
    "tests", "benches", "examples", "fixtures", "target", "vendor", ".git",
];

/// Lint one source string as if it lived at `rel_path`.
///
/// Runs the rules on the test-stripped token stream, then applies
/// inline waivers (`// lint: allow(Lx): reason` on the finding's line
/// or the line above).
#[must_use]
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let ctx = FileCtx::from_rel_path(rel_path);
    let lexed = lexer::lex(src);
    let tokens = rules::strip_test_regions(&lexed.tokens);
    let findings = rules::check(&ctx, &lexed, &tokens);
    findings
        .into_iter()
        .filter(|f| {
            let marker_owned = format!("lint: allow({}):", f.rule);
            let waived = [f.line, f.line.saturating_sub(1)]
                .iter()
                .any(|l| rules::has_reason(lexed.comment_on(*l), &marker_owned));
            !waived
        })
        .collect()
}

/// Lint one file on disk. `root` is the workspace root used to compute
/// the workspace-relative path.
///
/// # Errors
///
/// If the file cannot be read.
pub fn lint_file(root: &Path, file: &Path) -> Result<Vec<Finding>, String> {
    let src =
        fs::read_to_string(file).map_err(|e| format!("cannot read {}: {e}", file.display()))?;
    let rel = file
        .strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/");
    Ok(lint_source(&rel, &src))
}

/// Collect every lintable `.rs` file under `root`: the facade package's
/// `src/` plus each `crates/*/src` tree, skipping [`SKIP_DIRS`].
///
/// # Errors
///
/// If a directory cannot be read.
pub fn collect_workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        walk(&crates, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Outcome of a full lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived waivers and the allowlist.
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by `lint.allow.toml`.
    pub allowlisted: usize,
    /// Number of files linted.
    pub files: usize,
}

impl Report {
    /// True if any surviving finding is deny-severity.
    #[must_use]
    pub fn has_deny(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Deny)
    }
}

/// Lint a set of files against an allowlist.
///
/// # Errors
///
/// If any file cannot be read.
pub fn run(root: &Path, files: &[PathBuf], allowlist: &[AllowEntry]) -> Result<Report, String> {
    let mut report = Report {
        files: files.len(),
        ..Report::default()
    };
    for file in files {
        for f in lint_file(root, file)? {
            if allowlist.iter().any(|a| a.matches(&f)) {
                report.allowlisted += 1;
            } else {
                report.findings.push(f);
            }
        }
    }
    Ok(report)
}

/// Render findings as a JSON array (stable field order, hand-escaped).
#[must_use]
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":{},\"line\":{},\"rule\":{},\"severity\":{},\"message\":{}}}",
            json_str(&f.path),
            f.line,
            json_str(f.rule),
            json_str(f.severity.as_str()),
            json_str(&f.message),
        ));
    }
    out.push(']');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_waiver_suppresses_matching_rule_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(L3): demo reason\n";
        assert!(lint_source("crates/core/src/a.rs", src).is_empty());
        // Wrong rule id in the waiver: finding survives.
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(L1): demo reason\n";
        assert_eq!(lint_source("crates/core/src/a.rs", src).len(), 1);
        // Waiver with no reason: finding survives.
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(L3):\n";
        assert_eq!(lint_source("crates/core/src/a.rs", src).len(), 1);
    }

    #[test]
    fn waiver_on_line_above() {
        let src = "// lint: allow(L3): demo reason\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint_source("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn json_escaping() {
        let f = vec![Finding {
            path: "a\"b".into(),
            line: 3,
            rule: "L2",
            severity: Severity::Warn,
            message: "line1\nline2".into(),
        }];
        let j = to_json(&f);
        assert!(j.contains("\"a\\\"b\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"severity\":\"warn\""));
        assert_eq!(to_json(&[]), "[]");
    }

    #[test]
    fn report_deny_detection() {
        let mut r = Report::default();
        assert!(!r.has_deny());
        r.findings.push(Finding {
            path: "x".into(),
            line: 1,
            rule: "L3",
            severity: Severity::Warn,
            message: String::new(),
        });
        assert!(!r.has_deny());
        r.findings.push(Finding {
            path: "x".into(),
            line: 1,
            rule: "L3",
            severity: Severity::Deny,
            message: String::new(),
        });
        assert!(r.has_deny());
    }
}
