//! The rule catalogue (L1–L6) and the token-stream checks behind it.
//!
//! Each rule is a pure function over the tokenized file
//! ([`crate::lexer::Lexed`]) plus a [`FileCtx`] describing where the
//! file lives in the workspace (crate, path). Test code — `tests/`,
//! `benches/`, `examples/` directories and `#[cfg(test)]` / `#[test]`
//! items — is stripped before the rules run: the paper's invariants
//! constrain *shipping* code; tests are free to `unwrap()` and compare
//! floats exactly.
//!
//! See `DESIGN.md` §8 for the rationale of every rule and the waiver /
//! allowlist policy.

use crate::lexer::{Lexed, TokKind, Token};

/// Identifier of a lint rule, e.g. `"L3"`.
pub type RuleId = &'static str;

/// Finding severity. `Deny` findings fail the run; `Warn` findings are
/// reported (human + JSON) but do not affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run (exit 1).
    Deny,
    /// Reported but does not affect the exit code.
    Warn,
}

impl Severity {
    /// Lowercase name used in human and JSON output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule id (`"L1"` … `"L6"`).
    pub rule: RuleId,
    /// Whether the finding fails the run.
    pub severity: Severity,
    /// Human-readable explanation with a fix hint.
    pub message: String,
}

/// Where a file sits in the workspace; drives rule scoping.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path with forward slashes
    /// (e.g. `crates/core/src/dbf.rs`).
    pub rel_path: String,
    /// Crate directory name under `crates/` (`core`, `sim`, `obs`, …),
    /// or `None` for the facade package at the workspace root.
    pub crate_dir: Option<String>,
}

impl FileCtx {
    /// Build a context from a workspace-relative path.
    #[must_use]
    pub fn from_rel_path(rel: &str) -> Self {
        let rel_path = rel.replace('\\', "/");
        let crate_dir = rel_path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .map(str::to_string);
        FileCtx {
            rel_path,
            crate_dir,
        }
    }

    fn in_crate(&self, name: &str) -> bool {
        self.crate_dir.as_deref() == Some(name)
    }

    /// `crates/core/src/time.rs` is the one module allowed to do raw
    /// nanosecond arithmetic (L1) and lossy time casts (L4): it *is*
    /// the unit boundary.
    fn is_time_module(&self) -> bool {
        self.rel_path.ends_with("crates/core/src/time.rs")
            || self.rel_path == "crates/core/src/time.rs"
    }

    /// Library crates subject to the no-panic rule L3. Binary /
    /// reporting crates (`cli`, `bench`, `lint` itself) may panic on
    /// operator error; the library layer must return typed errors.
    fn is_lib_crate(&self) -> bool {
        matches!(
            self.crate_dir.as_deref(),
            Some("core" | "mckp" | "sim" | "server" | "obs" | "stats" | "workloads")
        )
    }
}

/// Numeric cast targets that lose information when the source is a
/// `u64` nanosecond count. (`u64`→`u128`/`i128` are lossless.)
const LOSSY_NS_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "i8", "i16", "i32", "i64", "f32", "f64", "usize", "isize",
];

const ARITH_OPS: &[&str] = &["+", "-", "*", "/", "%", "+=", "-=", "*=", "/=", "%="];

/// Run every applicable rule on a tokenized file.
///
/// `tokens` must already have test regions stripped (see
/// [`strip_test_regions`]); inline waivers are applied by the caller
/// ([`crate::lint_source`]), not here.
#[must_use]
pub fn check(ctx: &FileCtx, lexed: &Lexed, tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    if !ctx.is_time_module() {
        rule_l1_time_unit_hygiene(ctx, tokens, &mut out);
        rule_l4_lossy_time_casts(ctx, tokens, &mut out);
    }
    rule_l2_float_eq(ctx, tokens, &mut out);
    if ctx.is_lib_crate() {
        rule_l3_no_panics(ctx, tokens, &mut out);
    }
    if ctx.in_crate("core") || ctx.in_crate("sim") {
        rule_l5_no_wall_clock(ctx, tokens, &mut out);
    }
    if ctx.in_crate("obs") {
        rule_l6_relaxed_justified(ctx, lexed, tokens, &mut out);
    }
    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    out
}

/// Remove `#[cfg(test)]` / `#[test]` items from the token stream.
///
/// Recognizes an attribute whose identifier sequence is exactly
/// `cfg test` or `test`, then skips the annotated item: any further
/// attributes, then either a `;`-terminated item or a braced body
/// (skipped to the matching `}`). `#[cfg(not(test))]` is *not*
/// stripped (its identifier sequence is `cfg not test`).
#[must_use]
pub fn strip_test_regions(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let (idents, end) = attr_idents(tokens, i + 1);
            let is_test_attr =
                idents == ["cfg", "test"] || idents == ["test"] || idents == ["cfg", "loom"];
            if is_test_attr {
                i = skip_item(tokens, end + 1);
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Collect identifier tokens inside an attribute starting at the `[`
/// at index `open`. Returns the identifiers and the index of the
/// matching `]`.
fn attr_idents(tokens: &[Token], open: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return (idents, i);
            }
        } else if t.kind == TokKind::Ident {
            idents.push(t.text.clone());
        }
        i += 1;
    }
    (idents, tokens.len().saturating_sub(1))
}

/// Skip one item starting at `i` (after a test attribute): further
/// attributes, then a `;`-terminated item or a braced body.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Further attributes on the same item.
    while i < tokens.len()
        && tokens[i].is_punct("#")
        && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))
    {
        let (_, end) = attr_idents(tokens, i + 1);
        i = end + 1;
    }
    // Scan to `;` (no body) or the matching `}` of the first `{`.
    let mut depth = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if depth == 0 && t.is_punct(";") {
            return i + 1;
        }
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// True if the token at `i` produces a nanosecond-typed raw number:
/// an identifier ending in `_ns`, or the `)` closing an `.as_ns()` /
/// `.elapsed_ns()` call.
fn is_ns_valued(tokens: &[Token], i: usize) -> bool {
    let Some(t) = tokens.get(i) else {
        return false;
    };
    if t.kind == TokKind::Ident && t.text.ends_with("_ns") && t.text != "from_ns" {
        return true;
    }
    if t.is_punct(")") && i >= 2 && tokens[i - 1].is_punct("(") {
        if let Some(name) = tokens.get(i.wrapping_sub(2)) {
            return name.kind == TokKind::Ident
                && (name.text == "as_ns" || name.text.ends_with("_ns") && name.text != "from_ns");
        }
    }
    false
}

/// True if the token stream starting at `i` begins an expression whose
/// head is ns-valued: `x_ns …` or `x.as_ns()` / `self.field_ns`.
fn starts_ns_valued(tokens: &[Token], i: usize) -> bool {
    let Some(t) = tokens.get(i) else {
        return false;
    };
    if t.kind == TokKind::Ident && t.text.ends_with("_ns") && t.text != "from_ns" {
        return true;
    }
    // `recv . as_ns ( )` or `recv . field_ns`
    if t.kind == TokKind::Ident
        && tokens.get(i + 1).is_some_and(|d| d.is_punct("."))
        && tokens.get(i + 2).is_some_and(|m| {
            m.kind == TokKind::Ident && m.text.ends_with("_ns") && m.text != "from_ns"
        })
    {
        return true;
    }
    false
}

/// Could the token at `i` end an operand (making a following `*`/`-`
/// binary rather than unary)?
/// Keywords that may directly precede an array-literal `[` without the
/// bracket being an index expression.
fn is_expr_keyword(text: &str) -> bool {
    matches!(
        text,
        "in" | "return"
            | "if"
            | "else"
            | "match"
            | "break"
            | "while"
            | "loop"
            | "move"
            | "ref"
            | "mut"
            | "as"
            | "box"
            | "yield"
    )
}

fn ends_operand(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| {
        matches!(t.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
            || t.is_punct(")")
            || t.is_punct("]")
    })
}

/// **L1 — time-unit hygiene.** Raw `+ - * / %` (and compound
/// assignment) where either operand is a bare nanosecond count
/// (`*_ns` identifier or `.as_ns()` result) is flagged everywhere
/// except `core/src/time.rs`. Arithmetic on times must go through
/// `Duration`/`Instant`, whose operators carry the overflow policy.
fn rule_l1_time_unit_hygiene(ctx: &FileCtx, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Punct || !ARITH_OPS.contains(&t.text.as_str()) {
            continue;
        }
        // `*` / `-` / `&` in prefix position are deref/negation, not
        // arithmetic — require a binary position for those.
        let binary = ends_operand(tokens, i.wrapping_sub(1));
        if (t.text == "*" || t.text == "-") && !binary {
            continue;
        }
        let lhs_ns = binary && is_ns_valued(tokens, i - 1);
        let rhs_ns = starts_ns_valued(tokens, i + 1);
        if lhs_ns || rhs_ns {
            out.push(Finding {
                path: ctx.rel_path.clone(),
                line: t.line,
                rule: "L1",
                severity: Severity::Deny,
                message: format!(
                    "raw `{}` arithmetic on a nanosecond count; use `Duration`/`Instant` \
                     operations (only core/src/time.rs may do raw ns math)",
                    t.text
                ),
            });
        }
    }
}

/// **L2 — no exact float comparison.** `==` / `!=` with a float
/// literal operand. Density/benefit/DBF math is `f64`; exact equality
/// is only meaningful against a sign bound, so write `x <= 0.0` (with
/// a comment) or compare with a tolerance.
fn rule_l2_float_eq(ctx: &FileCtx, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let float_near = |j: usize| tokens.get(j).is_some_and(|n| n.kind == TokKind::Float);
        if float_near(i.wrapping_sub(1)) || float_near(i + 1) {
            out.push(Finding {
                path: ctx.rel_path.clone(),
                line: t.line,
                rule: "L2",
                severity: Severity::Deny,
                message: format!(
                    "exact float comparison `{}` against a float literal; use an \
                     inequality (`<= 0.0`) or an epsilon comparison",
                    t.text
                ),
            });
        }
    }
}

/// **L3 — no panics in library code.** `.unwrap()`, `.expect(…)`,
/// `panic!`, `unreachable!`, `todo!`, `unimplemented!` are denied in
/// library crates: return `CoreError`/`MckpError`/`SimError`/… instead.
/// Bare slice indexing `x[i]` is reported as a *warning* (heuristic:
/// too many false positives on validated indices to deny outright).
fn rule_l3_no_panics(ctx: &FileCtx, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            out.push(Finding {
                path: ctx.rel_path.clone(),
                line: t.line,
                rule: "L3",
                severity: Severity::Deny,
                message: format!(
                    "`{}!` in library code; surface a typed error instead",
                    t.text
                ),
            });
            continue;
        }
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "unwrap" | "expect")
            && i >= 1
            && tokens[i - 1].is_punct(".")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            out.push(Finding {
                path: ctx.rel_path.clone(),
                line: t.line,
                rule: "L3",
                severity: Severity::Deny,
                message: format!(
                    "`.{}()` in library code; propagate a typed error or use a total \
                     alternative (`unwrap_or`, `ok_or_else`, `let-else`)",
                    t.text
                ),
            });
            continue;
        }
        // Indexing heuristic: `ident[` / `)[` / `][` — but not `#[attr]`,
        // not `&[T]` slice types, and not keyword-adjacent array literals
        // (`for x in [..]`, `return [..]`, `match x { _ => [..] }`).
        if t.is_punct("[")
            && ends_operand(tokens, i.wrapping_sub(1))
            && !tokens
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.is_punct("#") || is_expr_keyword(&p.text))
        {
            out.push(Finding {
                path: ctx.rel_path.clone(),
                line: t.line,
                rule: "L3",
                severity: Severity::Warn,
                message: "slice indexing can panic; prefer `.get(…)` when the index is \
                          not locally proven in-bounds"
                    .to_string(),
            });
        }
    }
}

/// **L4 — lossy `as` casts on time values.** `…as_ns() as f64`,
/// `x_ns as u32`, … are flagged outside `core/src/time.rs`: the one
/// sanctioned widening is `Duration::as_ns_f64()` / `Instant::as_ns_f64()`.
fn rule_l4_lossy_time_casts(ctx: &FileCtx, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("as") {
            continue;
        }
        let Some(target) = tokens.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !LOSSY_NS_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        if is_ns_valued(tokens, i.wrapping_sub(1)) {
            out.push(Finding {
                path: ctx.rel_path.clone(),
                line: t.line,
                rule: "L4",
                severity: Severity::Deny,
                message: format!(
                    "lossy `as {}` cast on a nanosecond value; use `as_ns_f64()` (the \
                     sanctioned widening) or a checked conversion",
                    target.text
                ),
            });
        }
    }
}

/// **L5 — no wall clock in deterministic crates.** `std::time` paths
/// and `SystemTime` are banned from `core` and `sim`: simulated
/// behaviour must be a pure function of the seed. Wall-clock latency
/// measurement lives in `rto-obs` (`Stopwatch`).
fn rule_l5_no_wall_clock(ctx: &FileCtx, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        let std_time = t.is_ident("std")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|n| n.is_ident("time"));
        let system_time = t.is_ident("SystemTime");
        if std_time || system_time {
            out.push(Finding {
                path: ctx.rel_path.clone(),
                line: t.line,
                rule: "L5",
                severity: Severity::Deny,
                message: "wall clock (`std::time`/`SystemTime`) in a seed-deterministic \
                          crate; use `rto_core::time` for simulated time or \
                          `rto_obs::Stopwatch` for host latency"
                    .to_string(),
            });
        }
    }
}

/// **L6 — justified `Ordering::Relaxed`.** Every `Relaxed` atomic
/// ordering in `obs` must carry a `// lint: relaxed-ok: <reason>`
/// comment on the same line or the line above, forcing the author to
/// state why no happens-before edge is needed.
fn rule_l6_relaxed_justified(
    ctx: &FileCtx,
    lexed: &Lexed,
    tokens: &[Token],
    out: &mut Vec<Finding>,
) {
    for t in tokens {
        if !t.is_ident("Relaxed") {
            continue;
        }
        let justified = [t.line, t.line.saturating_sub(1)]
            .iter()
            .any(|l| has_reason(lexed.comment_on(*l), "lint: relaxed-ok:"));
        if !justified {
            out.push(Finding {
                path: ctx.rel_path.clone(),
                line: t.line,
                rule: "L6",
                severity: Severity::Deny,
                message: "`Ordering::Relaxed` without a `// lint: relaxed-ok: <reason>` \
                          justification on this line or the line above"
                    .to_string(),
            });
        }
    }
}

/// True if `comment` contains `marker` followed by a non-empty reason.
#[must_use]
pub fn has_reason(comment: &str, marker: &str) -> bool {
    comment
        .find(marker)
        .is_some_and(|at| !comment[at + marker.len()..].trim().is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let ctx = FileCtx::from_rel_path(rel);
        let lexed = lex(src);
        let toks = strip_test_regions(&lexed.tokens);
        check(&ctx, &lexed, &toks)
    }

    fn rules(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn l1_flags_raw_ns_arithmetic() {
        let f = run(
            "crates/sim/src/a.rs",
            "fn f(a: u64, b: u64) -> u64 { a + b_ns }",
        );
        assert_eq!(rules(&f), ["L1"]);
        let f = run("crates/sim/src/a.rs", "fn f() -> u64 { x.as_ns() * 2 }");
        assert_eq!(rules(&f), ["L1"]);
    }

    #[test]
    fn l1_exempts_time_module_and_from_ns() {
        assert!(run("crates/core/src/time.rs", "fn f() -> u64 { a_ns + b_ns }").is_empty());
        assert!(run("crates/sim/src/a.rs", "let d = Duration::from_ns(n) + e;").is_empty());
    }

    #[test]
    fn l1_ignores_unary_and_deref() {
        assert!(run(
            "crates/sim/src/a.rs",
            "let d = *rem_ns; let e = (-x, rem_ns);"
        )
        .is_empty());
    }

    #[test]
    fn l2_flags_float_equality_only() {
        let f = run("crates/core/src/a.rs", "fn f(x: f64) -> bool { x == 0.0 }");
        assert_eq!(rules(&f), ["L2"]);
        assert!(run("crates/core/src/a.rs", "fn f(x: f64) -> bool { x <= 0.0 }").is_empty());
        assert!(run("crates/core/src/a.rs", "fn f(x: u64) -> bool { x == 0 }").is_empty());
    }

    #[test]
    fn l3_flags_panics_in_lib_crates_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules(&run("crates/core/src/a.rs", src)), ["L3"]);
        assert!(run("crates/cli/src/a.rs", src).is_empty());
        let f = run("crates/obs/src/a.rs", "fn g() { unreachable!() }");
        assert_eq!(rules(&f), ["L3"]);
    }

    #[test]
    fn l3_total_alternatives_pass() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }";
        assert!(run("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn l3_indexing_is_warn() {
        let f = run("crates/core/src/a.rs", "fn f(v: &[u8]) -> u8 { v[0] }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "L3");
        assert_eq!(f[0].severity, Severity::Warn);
    }

    #[test]
    fn l4_flags_lossy_ns_casts() {
        let f = run("crates/sim/src/a.rs", "let x = d.as_ns() as f64;");
        assert_eq!(rules(&f), ["L4"]);
        assert!(run("crates/sim/src/a.rs", "let x = d.as_ns() as u128;").is_empty());
        assert!(run("crates/core/src/time.rs", "let x = d.as_ns() as f64;").is_empty());
    }

    #[test]
    fn l5_scoped_to_core_and_sim() {
        let src = "use std::time::Instant;";
        assert_eq!(rules(&run("crates/core/src/a.rs", src)), ["L5"]);
        assert_eq!(rules(&run("crates/sim/src/a.rs", src)), ["L5"]);
        assert!(run("crates/obs/src/a.rs", src).is_empty());
    }

    #[test]
    fn l6_requires_reasoned_comment() {
        let bad = "let x = c.load(Ordering::Relaxed);";
        assert_eq!(rules(&run("crates/obs/src/a.rs", bad)), ["L6"]);
        let good = "let x = c.load(Ordering::Relaxed); // lint: relaxed-ok: monotone counter\n";
        assert!(run("crates/obs/src/a.rs", good).is_empty());
        let above = "// lint: relaxed-ok: monotone counter\nlet x = c.load(Ordering::Relaxed);\n";
        assert!(run("crates/obs/src/a.rs", above).is_empty());
        // A marker without a reason does not count.
        let hollow = "let x = c.load(Ordering::Relaxed); // lint: relaxed-ok:\n";
        assert_eq!(rules(&run("crates/obs/src/a.rs", hollow)), ["L6"]);
        // Out of scope: other crates may use Relaxed freely.
        assert!(run("crates/sim/src/a.rs", bad).is_empty());
    }

    #[test]
    fn test_regions_are_stripped() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); assert!(y == 0.5); }\n}\n";
        assert!(run("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_stripped() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules(&run("crates/core/src/a.rs", src)), ["L3"]);
    }
}
