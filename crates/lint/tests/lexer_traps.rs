//! Lexer hardening: adversarial token streams that a naive scanner
//! mis-lexes. Both `rto-lint`'s rules and `rto-analyze`'s parser sit on
//! this lexer, so a confusion here (a string body leaking tokens, a
//! lifetime read as an unterminated char) would corrupt *two* tools'
//! findings. Each test pins the exact token stream.

use rto_lint::lexer::{lex, TokKind};

/// `(kind, text)` pairs for compact assertions.
fn kinds(src: &str) -> Vec<(TokKind, String)> {
    lex(src)
        .tokens
        .into_iter()
        .map(|t| (t.kind, t.text))
        .collect()
}

#[test]
fn raw_strings_are_opaque() {
    // `r#"…"#` with embedded quotes, `//`, and `unwrap()` — none of the
    // body may surface as tokens.
    let toks = kinds(r####"let x = r#"quote " slash // x.unwrap() done"# ;"####);
    let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
    assert_eq!(texts, ["let", "x", "=", "", ";"]);
    assert_eq!(toks[3].0, TokKind::Str);
    // More hashes than needed inside the body.
    let toks = kinds(r#####"r##"inner "# still open"## + 1"#####);
    assert_eq!(toks[0].0, TokKind::Str);
    assert_eq!(toks[1].1, "+");
    assert_eq!(toks[2].0, TokKind::Int);
}

#[test]
fn byte_strings_and_raw_byte_strings_are_opaque() {
    let toks = kinds(r###"let b = b"bytes .unwrap()" ;"###);
    let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
    assert_eq!(texts, ["let", "b", "=", "", ";"]);
    assert_eq!(toks[3].0, TokKind::Str);
    let toks = kinds(r####"br#"raw bytes " panic!() "# ;"####);
    assert_eq!(toks[0].0, TokKind::Str);
    assert_eq!(toks[1].1, ";");
    // No `panic` identifier escaped the literal.
    assert!(toks.iter().all(|(_, t)| t != "panic"));
}

#[test]
fn nested_block_comments_terminate_correctly() {
    let src = "a /* outer /* inner */ still comment */ b";
    let toks = kinds(src);
    let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
    assert_eq!(texts, ["a", "b"], "nested /* */ must nest, not cut early");
    // The whole comment is recorded on its starting line.
    let lexed = lex("x\n/* l2 /* deep */ tail */\ny\n");
    assert!(lexed.comment_on(2).contains("deep"));
    assert_eq!(lexed.tokens.len(), 2);
}

#[test]
fn char_literal_vs_lifetime() {
    // `'a'` is a char; `'a` (no closing quote) is a lifetime.
    let toks = kinds("let c: char = 'a'; fn f<'a>(x: &'a str) {}");
    let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
    assert_eq!(chars.len(), 1);
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::Lifetime)
        .collect();
    assert_eq!(lifetimes.len(), 2, "{toks:?}");
    // Escaped quote and escaped backslash chars don't derail the scan.
    let toks = kinds(r"let q = '\''; let b = '\\'; done");
    assert_eq!(
        toks.iter().filter(|(k, _)| *k == TokKind::Char).count(),
        2,
        "{toks:?}"
    );
    assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("done"));
    // `'static` in a type position is a lifetime, not an unterminated char.
    let toks = kinds("static S: &'static str = \"s\";");
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokKind::Lifetime && t == "'static"));
}

#[test]
fn string_escapes_do_not_leak_tokens() {
    // Escaped quote inside a normal string, then a real terminator.
    let toks = kinds(r#"let s = "she said \"hi\" // not a comment"; after"#);
    let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
    assert_eq!(texts, ["let", "s", "=", "", ";", "after"]);
    // A trailing backslash-escape at the very end must not panic.
    let toks = kinds(r#""unterminated \"#);
    assert_eq!(toks.len(), 1);
}

#[test]
fn maximal_munch_punctuation() {
    let toks = kinds("a >>= b; c << d; e -> f; g::h; i >= j");
    let puncts: Vec<&str> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::Punct)
        .map(|(_, t)| t.as_str())
        .collect();
    assert!(puncts.contains(&">>="), "{puncts:?}");
    assert!(puncts.contains(&"<<"), "{puncts:?}");
    assert!(puncts.contains(&"->"), "{puncts:?}");
    assert!(puncts.contains(&"::"), "{puncts:?}");
    assert!(puncts.contains(&">="), "{puncts:?}");
}

#[test]
fn line_numbers_survive_multiline_constructs() {
    let src = "let a = \"line1\nline2\nline3\";\nlet b = 9;\n";
    let lexed = lex(src);
    let b = lexed
        .tokens
        .iter()
        .find(|t| t.is_ident("b"))
        .expect("b token");
    assert_eq!(b.line, 4, "multiline string must advance the line counter");
    let nine = lexed
        .tokens
        .iter()
        .find(|t| t.kind == TokKind::Int)
        .expect("int token");
    assert_eq!(nine.line, 4);
}
