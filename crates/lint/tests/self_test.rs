//! Fixture-based self-tests for `rto-lint`.
//!
//! Each file in `tests/fixtures/` violates **exactly one** rule at the
//! line marked `// VIOLATION`. The library-level tests assert the rule
//! id and span; the binary-level tests stage the fixtures into a
//! throwaway workspace and assert the CLI's exit codes and output.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use rto_lint::{lint_source, Severity};

fn fixture(name: &str) -> String {
    let p = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {p}: {e}"))
}

/// 1-based line of the `// VIOLATION` marker.
fn violation_line(src: &str) -> u32 {
    let idx = src
        .lines()
        .position(|l| l.contains("// VIOLATION"))
        .expect("fixture has a VIOLATION marker");
    u32::try_from(idx).expect("fixture fits in u32") + 1
}

/// Assert the fixture yields exactly one finding: `rule`, deny, at the
/// marked line.
fn assert_single(name: &str, rel: &str, rule: &str) {
    let src = fixture(name);
    let findings = lint_source(rel, &src);
    assert_eq!(
        findings.len(),
        1,
        "{name}: expected exactly one finding, got {findings:?}"
    );
    assert_eq!(findings[0].rule, rule, "{name}: wrong rule");
    assert_eq!(
        findings[0].severity,
        Severity::Deny,
        "{name}: wrong severity"
    );
    assert_eq!(findings[0].line, violation_line(&src), "{name}: wrong span");
    assert_eq!(findings[0].path, rel, "{name}: wrong path");
}

#[test]
fn l1_fixture_raw_ns_arithmetic() {
    assert_single("l1.rs", "crates/sim/src/l1.rs", "L1");
}

#[test]
fn l2_fixture_float_equality() {
    assert_single("l2.rs", "crates/core/src/l2.rs", "L2");
}

#[test]
fn l3_fixture_unwrap_in_lib() {
    assert_single("l3.rs", "crates/core/src/l3.rs", "L3");
}

#[test]
fn l4_fixture_lossy_time_cast() {
    assert_single("l4.rs", "crates/sim/src/l4.rs", "L4");
}

#[test]
fn l5_fixture_wall_clock() {
    assert_single("l5.rs", "crates/core/src/l5.rs", "L5");
}

#[test]
fn l6_fixture_unjustified_relaxed() {
    assert_single("l6.rs", "crates/obs/src/l6.rs", "L6");
}

#[test]
fn inline_waiver_clears_each_fixture() {
    for (name, rel, rule) in [
        ("l1.rs", "crates/sim/src/l1.rs", "L1"),
        ("l2.rs", "crates/core/src/l2.rs", "L2"),
        ("l3.rs", "crates/core/src/l3.rs", "L3"),
        ("l4.rs", "crates/sim/src/l4.rs", "L4"),
        ("l5.rs", "crates/core/src/l5.rs", "L5"),
    ] {
        let src = fixture(name).replace(
            "// VIOLATION",
            &format!("// lint: allow({rule}): fixture waiver test"),
        );
        assert!(
            lint_source(rel, &src).is_empty(),
            "{name}: waiver should clear the finding"
        );
    }
    // L6 has its own justification marker.
    let src = fixture("l6.rs").replace("// VIOLATION", "// lint: relaxed-ok: fixture test");
    assert!(lint_source("crates/obs/src/l6.rs", &src).is_empty());
}

/// Stage fixtures into a throwaway workspace so the binary derives the
/// intended crate scoping from real paths.
struct TempWs {
    root: PathBuf,
}

impl TempWs {
    fn new(tag: &str) -> TempWs {
        let root =
            std::env::temp_dir().join(format!("rto-lint-selftest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create temp workspace");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("write manifest");
        TempWs { root }
    }

    fn put(&self, rel: &str, content: &str) {
        let p = self.root.join(rel);
        if let Some(dir) = p.parent() {
            fs::create_dir_all(dir).expect("mkdir");
        }
        fs::write(p, content).expect("write file");
    }

    fn run(&self, args: &[&str]) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_rto-lint"))
            .current_dir(&self.root)
            .args(args)
            .output()
            .expect("spawn rto-lint")
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn cli_exits_nonzero_with_correct_rule_per_fixture() {
    let ws = TempWs::new("rules");
    for (name, rel, rule) in [
        ("l1.rs", "crates/sim/src/l1.rs", "L1"),
        ("l2.rs", "crates/core/src/l2.rs", "L2"),
        ("l3.rs", "crates/core/src/l3.rs", "L3"),
        ("l4.rs", "crates/sim/src/l4.rs", "L4"),
        ("l5.rs", "crates/core/src/l5.rs", "L5"),
        ("l6.rs", "crates/obs/src/l6.rs", "L6"),
    ] {
        ws.put(rel, &fixture(name));
        let out = ws.run(&[rel]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{name}: expected exit 1, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!(" {rule} [deny] ")),
            "{name}: stdout should name {rule}: {stdout}"
        );
    }
}

#[test]
fn cli_workspace_mode_and_json() {
    let ws = TempWs::new("ws");
    ws.put(
        "crates/core/src/clean.rs",
        "pub fn ok(x: u64) -> u64 { x }\n",
    );
    ws.put("crates/core/src/bad.rs", &fixture("l3.rs"));
    // Test directories are exempt even in workspace mode.
    ws.put("crates/core/tests/itest.rs", &fixture("l3.rs"));

    let out = ws.run(&["--workspace", "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"rule\":\"L3\""), "json: {json}");
    assert!(json.contains("crates/core/src/bad.rs"));
    assert!(!json.contains("itest.rs"), "tests/ must be exempt: {json}");

    // An allowlist entry with a reason clears the run.
    ws.put(
        "lint.allow.toml",
        "[[allow]]\npath = \"crates/core/src/bad.rs\"\nrule = \"L3\"\nreason = \"fixture\"\n",
    );
    let out = ws.run(&["--workspace"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "allowlisted run should pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn cli_rejects_malformed_allowlist() {
    let ws = TempWs::new("allow");
    ws.put(
        "crates/core/src/clean.rs",
        "pub fn ok(x: u64) -> u64 { x }\n",
    );
    // Missing reason: hard error, exit 2.
    ws.put(
        "lint.allow.toml",
        "[[allow]]\npath = \"x.rs\"\nrule = \"L1\"\n",
    );
    let out = ws.run(&["--workspace"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("reason"));
}
