//! Fixture: violates exactly one rule — L4 (lossy cast on a time value).

pub fn widen(d: rto_core::time::Duration) -> f64 {
    d.as_ns() as f64 // VIOLATION
}
