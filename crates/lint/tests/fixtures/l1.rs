//! Fixture: violates exactly one rule — L1 (raw nanosecond arithmetic).

pub fn total(budget_ns: u64, extra: u64) -> u64 {
    budget_ns + extra // VIOLATION
}
