//! Fixture: violates exactly one rule — L5 (wall clock in a deterministic crate).

use std::time::Instant; // VIOLATION

pub fn tick() -> Instant {
    Instant::now()
}
