//! Fixture: violates exactly one rule — L3 (panic in library code).

pub fn first(xs: Option<u32>) -> u32 {
    xs.unwrap() // VIOLATION
}
