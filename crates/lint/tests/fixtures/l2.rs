//! Fixture: violates exactly one rule — L2 (exact float comparison).

pub fn is_idle(density: f64) -> bool {
    density == 0.0 // VIOLATION
}
