//! Verifies the acceptance criterion that the disabled-tracing path adds
//! **no heap allocation per event**: emitting through a [`NullSink`]
//! (and bumping counters / recording histogram samples) must not call
//! the allocator at all.
//!
//! The check uses a counting `#[global_allocator]`, so this file must be
//! the *only* test in its integration-test binary — Rust integration
//! tests each compile to their own crate, which is also why the
//! `forbid(unsafe_code)` in the library does not apply here (the
//! `GlobalAlloc` impl needs `unsafe`).

use rto_obs::{Counter, Histogram, NullSink, Obs, TraceEvent};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Count only allocations made by the *test thread*: the libtest
    /// harness thread may allocate concurrently (progress output, timers)
    /// and must not flake the assertion. `const` init keeps the TLS
    /// access itself allocation-free.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_here() -> bool {
    // `try_with`: TLS may already be destroyed when late allocations
    // happen during thread teardown.
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

// SAFETY: delegates every operation to `System`; only adds bookkeeping.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn null_sink_hot_path_does_not_allocate() {
    // Set everything up *before* counting: the Obs bundle, the metric
    // handles, and the events themselves (all-Copy, stack-only).
    let obs = Obs::with_sink(Arc::new(NullSink));
    let counter: Counter = obs.metrics().counter("offloads_total");
    let histogram: Histogram = obs.metrics().histogram("response_ns");
    let events = [
        TraceEvent::JobReleased {
            job_id: 1,
            task_id: 0,
            deadline_ns: 1_000_000,
        },
        TraceEvent::OffloadRequestSent {
            job_id: 1,
            task_id: 0,
            payload_bytes: 65_536,
        },
        TraceEvent::ServerResponseArrived {
            job_id: 1,
            task_id: 0,
            late: false,
        },
        TraceEvent::DeadlineMet {
            job_id: 1,
            task_id: 0,
        },
    ];

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for round in 0..10_000u64 {
        for event in events {
            obs.emit(round, event);
        }
        counter.inc();
        histogram.record(round * 1_000);
    }
    COUNTING.with(|c| c.set(false));

    assert_eq!(
        ALLOCATIONS.load(Ordering::SeqCst),
        0,
        "disabled tracing / metric recording must be allocation-free"
    );
    // The work still happened.
    assert_eq!(counter.get(), 10_000);
    let snap = obs.metrics().snapshot();
    assert_eq!(snap.histogram("response_ns").unwrap().count, 10_000);
}
