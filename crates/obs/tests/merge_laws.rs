//! Proptests for the shard merge laws.
//!
//! `MetricsShard::merge` must form a commutative monoid — associative,
//! commutative, with the empty shard as identity — for every metric
//! family (counters: saturating sum; gauges: last-writer-wins by
//! `(seq, bits)`; histogram digests: bucket-wise sum; series:
//! bucket-start-keyed sum). These laws are exactly what makes a
//! parallel sweep's merged metrics independent of completion order,
//! and therefore byte-identical to the serial run.

use proptest::prelude::*;
use rto_obs::metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
use rto_obs::shard::{GaugeShard, HistogramDigest, MetricsShard, SeriesShard, TimePoint};
use std::collections::BTreeMap;

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// A shard built the same way real exporters build them: by recording
/// into live handles and exporting, so every structural invariant
/// (sorted sparse buckets, bucket indices, ring order) holds by
/// construction.
#[derive(Debug, Clone)]
struct ShardSpec {
    counters: Vec<(usize, u64)>,
    gauges: Vec<(usize, Vec<u32>)>,
    histograms: Vec<(usize, Vec<u64>)>,
    series: Vec<(usize, Vec<(u64, u64)>)>,
}

fn spec_strategy() -> impl Strategy<Value = ShardSpec> {
    (
        prop::collection::vec((0usize..4, 0u64..10_000), 0..4),
        prop::collection::vec(
            (0usize..4, prop::collection::vec(0u32..1_000_000, 0..4)),
            0..3,
        ),
        prop::collection::vec(
            (0usize..4, prop::collection::vec(0u64..10_000_000, 0..16)),
            0..3,
        ),
        prop::collection::vec(
            (
                0usize..4,
                prop::collection::vec((0u64..500, 0u64..100), 0..8),
            ),
            0..2,
        ),
    )
        .prop_map(|(counters, gauges, histograms, series)| ShardSpec {
            counters,
            gauges,
            histograms,
            series,
        })
}

fn build(spec: &ShardSpec) -> MetricsShard {
    let reg = MetricsRegistry::new();
    for (name, value) in &spec.counters {
        reg.counter(NAMES[*name]).add(*value);
    }
    for (name, writes) in &spec.gauges {
        let g = reg.gauge(NAMES[*name]);
        for v in writes {
            // Written via set() so the write stamp advances like real code.
            g.set(f64::from(*v));
        }
    }
    for (name, values) in &spec.histograms {
        let h = reg.histogram(NAMES[*name]);
        for v in values {
            h.record(*v);
        }
    }
    for (name, obs) in &spec.series {
        let s = reg.series(NAMES[*name], 50);
        for (ts, v) in obs {
            s.record(*ts, *v);
        }
    }
    reg.shard()
}

fn merged(a: &MetricsShard, b: &MetricsShard) -> MetricsShard {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_associative(
        a in spec_strategy(),
        b in spec_strategy(),
        c in spec_strategy(),
    ) {
        let (a, b, c) = (build(&a), build(&b), build(&c));
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(&left, &right);
        // Equality is also *byte* equality under the canonical encoding.
        prop_assert_eq!(left.to_json(), right.to_json());
    }

    #[test]
    fn merge_is_commutative(a in spec_strategy(), b in spec_strategy()) {
        let (a, b) = (build(&a), build(&b));
        prop_assert_eq!(merged(&a, &b).to_json(), merged(&b, &a).to_json());
    }

    #[test]
    fn empty_shard_is_the_identity(a in spec_strategy()) {
        let a = build(&a);
        let empty = MetricsShard::default();
        prop_assert_eq!(&merged(&a, &empty), &a);
        prop_assert_eq!(&merged(&empty, &a), &a);
    }

    #[test]
    fn shard_serde_round_trips_byte_stable(a in spec_strategy()) {
        let a = build(&a);
        let json = a.to_json();
        let back: MetricsShard = serde_json::from_str(&json).expect("round trip");
        prop_assert_eq!(&back, &a);
        prop_assert_eq!(back.to_json(), json);
    }

    #[test]
    fn snapshot_with_series_round_trips(a in spec_strategy()) {
        let shard = build(&a);
        let snap = shard.to_snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("round trip");
        prop_assert_eq!(back, snap);
    }

    /// Merging per-worker digests equals digesting the union of the
    /// observations — the histogram-specific statement of "sharding is
    /// transparent".
    #[test]
    fn split_digests_merge_to_the_whole(
        values in prop::collection::vec(0u64..10_000_000, 0..64),
        split in 0usize..64,
    ) {
        let split = split.min(values.len());
        let (left, right) = values.split_at(split);
        let (ha, hb, hall) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in left { ha.record(*v); }
        for v in right { hb.record(*v); }
        for v in &values { hall.record(*v); }
        let mut m = ha.digest();
        m.merge(&hb.digest());
        prop_assert_eq!(m, hall.digest());
    }
}

#[test]
fn gauge_lww_tie_break_is_deterministic() {
    // Equal write counts: the larger bit pattern wins regardless of
    // merge direction (documented arbitration, keeps commutativity).
    let a = GaugeShard {
        seq: 2,
        bits: 1.0f64.to_bits(),
    };
    let b = GaugeShard {
        seq: 2,
        bits: 2.0f64.to_bits(),
    };
    let mut ab = a;
    ab.merge(&b);
    let mut ba = b;
    ba.merge(&a);
    assert_eq!(ab, ba);
    assert_eq!(ab.value(), 2.0);
}

#[test]
fn digest_and_series_defaults_are_identities_too() {
    let mut d = HistogramDigest::default();
    let h = Histogram::new();
    h.record(42);
    d.merge(&h.digest());
    assert_eq!(d, h.digest());

    let mut s = SeriesShard::default();
    let real = SeriesShard {
        bucket_width_ns: 10,
        points: vec![TimePoint {
            start_ns: 0,
            count: 1,
            sum: 3,
        }],
    };
    s.merge(&real);
    assert_eq!(s, real);

    let mut m = MetricsShard {
        counters: BTreeMap::from([("c".to_string(), 1)]),
        ..MetricsShard::default()
    };
    m.merge(&MetricsShard::default());
    assert_eq!(m.counters.get("c"), Some(&1));
}
