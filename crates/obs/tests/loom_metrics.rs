//! loom model tests for the lock-free metrics hot paths.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p rto-obs --test
//! loom_metrics` (see `scripts/check.sh`). Without the cfg the file
//! compiles to nothing, so the regular test run is unaffected.
//!
//! Each test wraps a two-thread interaction with a Counter / Gauge /
//! Histogram handle pair cloned from the same registry entry and
//! asserts that no update is lost and every aggregate is consistent,
//! under whatever interleavings the loom backend explores (exhaustive
//! with the real crate, randomized stress with the vendored shim).
#![cfg(loom)]

use rto_obs::MetricsRegistry;

#[test]
fn counter_increments_are_never_lost() {
    loom::model(|| {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("jobs");
        let c2 = reg.counter("jobs"); // same underlying atomic
        let h = loom::thread::spawn(move || {
            c1.inc();
            c1.add(2);
        });
        c2.inc();
        h.join().expect("counter thread");
        assert_eq!(reg.snapshot().counter("jobs"), Some(4));
    });
}

#[test]
fn gauge_cas_add_is_atomic() {
    loom::model(|| {
        let reg = MetricsRegistry::new();
        let g1 = reg.gauge("queue_depth");
        let g2 = reg.gauge("queue_depth");
        let h = loom::thread::spawn(move || {
            g1.add(1.5);
        });
        g2.add(-0.5);
        h.join().expect("gauge thread");
        let v = reg.snapshot().gauge("queue_depth").expect("gauge exported");
        // Both CAS loops must retire exactly once: 1.5 - 0.5 = 1.0
        // (each addend is exactly representable, so no tolerance games).
        assert!((v - 1.0).abs() < 1e-12, "lost gauge update: {v}");
    });
}

#[test]
fn histogram_concurrent_records_are_consistent() {
    loom::model(|| {
        let reg = MetricsRegistry::new();
        let h1 = reg.histogram("latency_ns");
        let h2 = reg.histogram("latency_ns");
        let t = loom::thread::spawn(move || {
            h1.record(5);
            h1.record(1_000_000);
        });
        h2.record(42);
        t.join().expect("histogram thread");
        let snap = reg.snapshot();
        let h = snap.histogram("latency_ns").expect("histogram exported");
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1_000_047);
        assert_eq!(h.min, Some(5));
        assert_eq!(h.max, Some(1_000_000));
        // Quantiles must come from the same three observations.
        assert!(h.p50.is_some() && h.p99.is_some());
    });
}

#[test]
fn concurrent_handle_registration_is_single_cell() {
    loom::model(|| {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let r2 = std::sync::Arc::clone(&reg);
        let t = loom::thread::spawn(move || {
            let c = r2.counter("shared");
            c.inc();
        });
        let c = reg.counter("shared");
        c.inc();
        t.join().expect("registration thread");
        // Registration must dedupe on name: both increments land in
        // the same cell.
        assert_eq!(reg.snapshot().counter("shared"), Some(2));
    });
}
