//! The structured trace-event taxonomy.
//!
//! Every observable state transition in the offloading runtime maps to
//! one [`TraceEvent`] variant. Events are plain-old-data: every field is
//! `Copy`, so constructing and recording an event never touches the
//! heap — the [`NullSink`](crate::sink::NullSink) fast path is
//! allocation-free by construction (and verified by a counting-allocator
//! test).
//!
//! Events serialize to JSON *manually* (no serde derive) so the JSONL
//! golden files stay byte-stable across refactors: field order is fixed
//! here, not by struct declaration order.

use std::fmt::Write as _;

/// The execution phase a sub-job belongs to.
///
/// Mirrors the simulator's sub-job kinds without depending on `rto-sim`
/// (the dependency points the other way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// A non-offloaded job executing entirely locally.
    LocalWhole,
    /// The setup part `C_{i,1}` of an offloaded job.
    Setup,
    /// Post-processing `C_{i,3}` after an in-time server result.
    PostProcess,
    /// The local compensation `C_{i,2}` after a timeout.
    Compensation,
}

impl Phase {
    /// Stable lowercase identifier used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::LocalWhole => "local",
            Phase::Setup => "setup",
            Phase::PostProcess => "post_process",
            Phase::Compensation => "compensation",
        }
    }
}

/// One structured trace event, stamped by the emitter with a monotonic
/// simulation timestamp (nanoseconds).
///
/// All variants are `Copy`; none own heap data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A job of `task_id` was released with the given absolute deadline.
    JobReleased {
        /// Simulator-wide job index.
        job_id: usize,
        /// Owning task.
        task_id: usize,
        /// Absolute deadline, ns since simulation start.
        deadline_ns: u64,
    },
    /// A sub-job became ready and entered the run queue.
    SubJobDispatched {
        /// Owning job.
        job_id: usize,
        /// Owning task.
        task_id: usize,
        /// Which phase of the job this sub-job is.
        phase: Phase,
    },
    /// A sub-job started (or resumed) executing on the processor.
    SubJobStarted {
        /// Owning job.
        job_id: usize,
        /// Owning task.
        task_id: usize,
        /// Which phase of the job this sub-job is.
        phase: Phase,
    },
    /// A running sub-job lost the processor to a higher-priority one.
    SubJobPreempted {
        /// Owning job.
        job_id: usize,
        /// Owning task.
        task_id: usize,
        /// Which phase of the job this sub-job is.
        phase: Phase,
    },
    /// A sub-job finished its work.
    SubJobCompleted {
        /// Owning job.
        job_id: usize,
        /// Owning task.
        task_id: usize,
        /// Which phase of the job this sub-job is.
        phase: Phase,
    },
    /// An offload request left the device for the server.
    OffloadRequestSent {
        /// Owning job.
        job_id: usize,
        /// Owning task.
        task_id: usize,
        /// Request payload size in bytes.
        payload_bytes: u64,
    },
    /// The network or server dropped the request; no response will come.
    OffloadRequestLost {
        /// Owning job.
        job_id: usize,
        /// Owning task.
        task_id: usize,
    },
    /// The server's response arrived back at the device.
    ServerResponseArrived {
        /// Owning job.
        job_id: usize,
        /// Owning task.
        task_id: usize,
        /// `true` when the compensation timer had already fired, so the
        /// result was discarded.
        late: bool,
    },
    /// A compensation timer was armed for an in-flight offload.
    CompensationTimerArmed {
        /// Owning job.
        job_id: usize,
        /// Owning task.
        task_id: usize,
        /// Absolute fire time, ns since simulation start.
        fires_at_ns: u64,
    },
    /// The compensation timer fired.
    CompensationTimerFired {
        /// Owning job.
        job_id: usize,
        /// Owning task.
        task_id: usize,
        /// `true` when the result had already arrived, so the timer was
        /// a no-op.
        stale: bool,
    },
    /// An accountable job met its deadline.
    DeadlineMet {
        /// Owning job.
        job_id: usize,
        /// Owning task.
        task_id: usize,
    },
    /// An accountable job missed its deadline.
    DeadlineMissed {
        /// Owning job.
        job_id: usize,
        /// Owning task.
        task_id: usize,
    },
    /// A server fleet routed a request to one of its members.
    FleetRouted {
        /// The requesting task.
        task_id: usize,
        /// The chosen fleet member index.
        member: usize,
    },
    /// The experiment engine finished one trial of a trial matrix.
    ///
    /// Emitted by `rto-exp` once per `(point, trial)` cell, whether the
    /// result was freshly simulated or served from the trial cache.
    /// Timestamps are host-side nanoseconds since the matrix run
    /// started (the engine is not simulated time).
    TrialDone {
        /// Matrix point (grid row) index.
        point: usize,
        /// Trial index within the point.
        trial: usize,
        /// `true` when the result came from the trial cache.
        cached: bool,
        /// Host wall-clock duration of this trial in nanoseconds
        /// (0 for cache hits).
        elapsed_ns: u64,
    },
    /// The offloading decision manager chose a plan.
    OdmDecisionChosen {
        /// Name of the MCKP solver that produced the plan.
        solver: &'static str,
        /// How many tasks the plan offloads.
        offloaded: usize,
        /// Total tasks considered.
        total_tasks: usize,
        /// Theorem-3 density of the plan, in millionths (the knapsack
        /// capacity used, of a budget of 1 000 000).
        capacity_used_ppm: u64,
        /// Wall-clock solver latency in nanoseconds.
        latency_ns: u64,
    },
    /// One network transfer (uplink or downlink leg of an offload) was
    /// sampled by the network model.
    NetTransfer {
        /// Bytes moved (or attempted, when lost).
        payload_bytes: u64,
        /// Sampled transfer latency in nanoseconds (0 when lost).
        elapsed_ns: u64,
        /// `true` when the network dropped the message.
        lost: bool,
    },
}

impl TraceEvent {
    /// Stable snake_case event-kind tag used in JSON output.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::JobReleased { .. } => "job_released",
            TraceEvent::SubJobDispatched { .. } => "subjob_dispatched",
            TraceEvent::SubJobStarted { .. } => "subjob_started",
            TraceEvent::SubJobPreempted { .. } => "subjob_preempted",
            TraceEvent::SubJobCompleted { .. } => "subjob_completed",
            TraceEvent::OffloadRequestSent { .. } => "offload_request_sent",
            TraceEvent::OffloadRequestLost { .. } => "offload_request_lost",
            TraceEvent::ServerResponseArrived { .. } => "server_response_arrived",
            TraceEvent::CompensationTimerArmed { .. } => "compensation_timer_armed",
            TraceEvent::CompensationTimerFired { .. } => "compensation_timer_fired",
            TraceEvent::DeadlineMet { .. } => "deadline_met",
            TraceEvent::DeadlineMissed { .. } => "deadline_missed",
            TraceEvent::FleetRouted { .. } => "fleet_routed",
            TraceEvent::TrialDone { .. } => "trial_done",
            TraceEvent::OdmDecisionChosen { .. } => "odm_decision_chosen",
            TraceEvent::NetTransfer { .. } => "net_transfer",
        }
    }

    /// The owning job, for events that have one.
    pub fn job_id(&self) -> Option<usize> {
        match *self {
            TraceEvent::JobReleased { job_id, .. }
            | TraceEvent::SubJobDispatched { job_id, .. }
            | TraceEvent::SubJobStarted { job_id, .. }
            | TraceEvent::SubJobPreempted { job_id, .. }
            | TraceEvent::SubJobCompleted { job_id, .. }
            | TraceEvent::OffloadRequestSent { job_id, .. }
            | TraceEvent::OffloadRequestLost { job_id, .. }
            | TraceEvent::ServerResponseArrived { job_id, .. }
            | TraceEvent::CompensationTimerArmed { job_id, .. }
            | TraceEvent::CompensationTimerFired { job_id, .. }
            | TraceEvent::DeadlineMet { job_id, .. }
            | TraceEvent::DeadlineMissed { job_id, .. } => Some(job_id),
            TraceEvent::FleetRouted { .. }
            | TraceEvent::TrialDone { .. }
            | TraceEvent::OdmDecisionChosen { .. }
            | TraceEvent::NetTransfer { .. } => None,
        }
    }

    /// The owning task, for events that have one.
    pub fn task_id(&self) -> Option<usize> {
        match *self {
            TraceEvent::JobReleased { task_id, .. }
            | TraceEvent::SubJobDispatched { task_id, .. }
            | TraceEvent::SubJobStarted { task_id, .. }
            | TraceEvent::SubJobPreempted { task_id, .. }
            | TraceEvent::SubJobCompleted { task_id, .. }
            | TraceEvent::OffloadRequestSent { task_id, .. }
            | TraceEvent::OffloadRequestLost { task_id, .. }
            | TraceEvent::ServerResponseArrived { task_id, .. }
            | TraceEvent::CompensationTimerArmed { task_id, .. }
            | TraceEvent::CompensationTimerFired { task_id, .. }
            | TraceEvent::DeadlineMet { task_id, .. }
            | TraceEvent::DeadlineMissed { task_id, .. }
            | TraceEvent::FleetRouted { task_id, .. } => Some(task_id),
            TraceEvent::TrialDone { .. }
            | TraceEvent::OdmDecisionChosen { .. }
            | TraceEvent::NetTransfer { .. } => None,
        }
    }

    /// Appends this event as one JSON object (no trailing newline) with
    /// a fixed, documented field order:
    /// `ts_ns`, `event`, then variant fields in declaration order.
    pub fn write_json(&self, ts_ns: u64, out: &mut String) {
        let _ = write!(out, "{{\"ts_ns\":{ts_ns},\"event\":\"{}\"", self.kind());
        match *self {
            TraceEvent::JobReleased {
                job_id,
                task_id,
                deadline_ns,
            } => {
                let _ = write!(
                    out,
                    ",\"job_id\":{job_id},\"task_id\":{task_id},\"deadline_ns\":{deadline_ns}"
                );
            }
            TraceEvent::SubJobDispatched {
                job_id,
                task_id,
                phase,
            }
            | TraceEvent::SubJobStarted {
                job_id,
                task_id,
                phase,
            }
            | TraceEvent::SubJobPreempted {
                job_id,
                task_id,
                phase,
            }
            | TraceEvent::SubJobCompleted {
                job_id,
                task_id,
                phase,
            } => {
                let _ = write!(
                    out,
                    ",\"job_id\":{job_id},\"task_id\":{task_id},\"phase\":\"{}\"",
                    phase.as_str()
                );
            }
            TraceEvent::OffloadRequestSent {
                job_id,
                task_id,
                payload_bytes,
            } => {
                let _ = write!(
                    out,
                    ",\"job_id\":{job_id},\"task_id\":{task_id},\"payload_bytes\":{payload_bytes}"
                );
            }
            TraceEvent::OffloadRequestLost { job_id, task_id }
            | TraceEvent::DeadlineMet { job_id, task_id }
            | TraceEvent::DeadlineMissed { job_id, task_id } => {
                let _ = write!(out, ",\"job_id\":{job_id},\"task_id\":{task_id}");
            }
            TraceEvent::ServerResponseArrived {
                job_id,
                task_id,
                late,
            } => {
                let _ = write!(
                    out,
                    ",\"job_id\":{job_id},\"task_id\":{task_id},\"late\":{late}"
                );
            }
            TraceEvent::CompensationTimerArmed {
                job_id,
                task_id,
                fires_at_ns,
            } => {
                let _ = write!(
                    out,
                    ",\"job_id\":{job_id},\"task_id\":{task_id},\"fires_at_ns\":{fires_at_ns}"
                );
            }
            TraceEvent::CompensationTimerFired {
                job_id,
                task_id,
                stale,
            } => {
                let _ = write!(
                    out,
                    ",\"job_id\":{job_id},\"task_id\":{task_id},\"stale\":{stale}"
                );
            }
            TraceEvent::FleetRouted { task_id, member } => {
                let _ = write!(out, ",\"task_id\":{task_id},\"member\":{member}");
            }
            TraceEvent::TrialDone {
                point,
                trial,
                cached,
                elapsed_ns,
            } => {
                let _ = write!(
                    out,
                    ",\"point\":{point},\"trial\":{trial},\"cached\":{cached},\"elapsed_ns\":{elapsed_ns}"
                );
            }
            TraceEvent::OdmDecisionChosen {
                solver,
                offloaded,
                total_tasks,
                capacity_used_ppm,
                latency_ns,
            } => {
                let _ = write!(
                    out,
                    ",\"solver\":\"{solver}\",\"offloaded\":{offloaded},\"total_tasks\":{total_tasks},\"capacity_used_ppm\":{capacity_used_ppm},\"latency_ns\":{latency_ns}"
                );
            }
            TraceEvent::NetTransfer {
                payload_bytes,
                elapsed_ns,
                lost,
            } => {
                let _ = write!(
                    out,
                    ",\"payload_bytes\":{payload_bytes},\"elapsed_ns\":{elapsed_ns},\"lost\":{lost}"
                );
            }
        }
        out.push('}');
    }

    /// Renders this event as one JSON line (convenience wrapper around
    /// [`TraceEvent::write_json`]).
    pub fn to_json(&self, ts_ns: u64) -> String {
        let mut s = String::with_capacity(96);
        self.write_json(ts_ns, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_field_order_is_stable() {
        let e = TraceEvent::JobReleased {
            job_id: 3,
            task_id: 1,
            deadline_ns: 50_000_000,
        };
        assert_eq!(
            e.to_json(12),
            "{\"ts_ns\":12,\"event\":\"job_released\",\"job_id\":3,\"task_id\":1,\"deadline_ns\":50000000}"
        );
    }

    #[test]
    fn phases_render_lowercase() {
        let e = TraceEvent::SubJobDispatched {
            job_id: 0,
            task_id: 0,
            phase: Phase::PostProcess,
        };
        assert!(e.to_json(0).contains("\"phase\":\"post_process\""));
    }

    #[test]
    fn booleans_render_bare() {
        let e = TraceEvent::ServerResponseArrived {
            job_id: 1,
            task_id: 2,
            late: true,
        };
        assert!(e.to_json(7).ends_with("\"late\":true}"));
    }

    #[test]
    fn ids_are_extractable() {
        let e = TraceEvent::DeadlineMissed {
            job_id: 9,
            task_id: 4,
        };
        assert_eq!(e.job_id(), Some(9));
        assert_eq!(e.task_id(), Some(4));
        let odm = TraceEvent::OdmDecisionChosen {
            solver: "dp",
            offloaded: 1,
            total_tasks: 2,
            capacity_used_ppm: 500_000,
            latency_ns: 10,
        };
        assert_eq!(odm.job_id(), None);
        assert_eq!(odm.task_id(), None);
    }

    #[test]
    fn every_kind_parses_as_json() {
        let all = [
            TraceEvent::JobReleased {
                job_id: 0,
                task_id: 0,
                deadline_ns: 1,
            },
            TraceEvent::SubJobDispatched {
                job_id: 0,
                task_id: 0,
                phase: Phase::Setup,
            },
            TraceEvent::SubJobStarted {
                job_id: 0,
                task_id: 0,
                phase: Phase::Setup,
            },
            TraceEvent::SubJobPreempted {
                job_id: 0,
                task_id: 0,
                phase: Phase::LocalWhole,
            },
            TraceEvent::SubJobCompleted {
                job_id: 0,
                task_id: 0,
                phase: Phase::Compensation,
            },
            TraceEvent::OffloadRequestSent {
                job_id: 0,
                task_id: 0,
                payload_bytes: 64,
            },
            TraceEvent::OffloadRequestLost {
                job_id: 0,
                task_id: 0,
            },
            TraceEvent::ServerResponseArrived {
                job_id: 0,
                task_id: 0,
                late: false,
            },
            TraceEvent::CompensationTimerArmed {
                job_id: 0,
                task_id: 0,
                fires_at_ns: 5,
            },
            TraceEvent::CompensationTimerFired {
                job_id: 0,
                task_id: 0,
                stale: true,
            },
            TraceEvent::DeadlineMet {
                job_id: 0,
                task_id: 0,
            },
            TraceEvent::DeadlineMissed {
                job_id: 0,
                task_id: 0,
            },
            TraceEvent::FleetRouted {
                task_id: 0,
                member: 2,
            },
            TraceEvent::TrialDone {
                point: 3,
                trial: 1,
                cached: true,
                elapsed_ns: 99,
            },
            TraceEvent::OdmDecisionChosen {
                solver: "heu-oe",
                offloaded: 2,
                total_tasks: 4,
                capacity_used_ppm: 900_000,
                latency_ns: 123,
            },
            TraceEvent::NetTransfer {
                payload_bytes: 65536,
                elapsed_ns: 1_500_000,
                lost: false,
            },
        ];
        for e in all {
            let line = e.to_json(42);
            let v: serde_json::Value = serde_json::from_str(&line).expect("valid JSON");
            let obj = match v {
                serde_json::Value::Object(o) => o,
                other => panic!("not an object: {other:?}"),
            };
            assert_eq!(
                obj.iter()
                    .find(|(k, _)| k == "event")
                    .map(|(_, v)| v.clone()),
                Some(serde_json::Value::Str(e.kind().to_string()))
            );
        }
    }
}
