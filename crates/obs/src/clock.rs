//! Wall-clock stopwatch for *observational* latency metrics.
//!
//! `rto-obs` is the only rto crate allowed to read the host wall clock:
//! lint rule L5 bans `std::time` from `rto-core` and `rto-sim` so that
//! everything affecting simulated behaviour stays a pure function of
//! the seed. Code in those crates that wants to report how long a
//! *host-side* computation took (e.g. ODM planning latency) borrows a
//! [`Stopwatch`] from here; the reading feeds histograms only and never
//! flows back into scheduling decisions.

use std::time::Instant;

/// A started wall-clock stopwatch.
///
/// # Example
///
/// ```
/// let sw = rto_obs::Stopwatch::start();
/// let ns = sw.elapsed_ns();
/// // `ns` is suitable for `Histogram::record`.
/// let _ = ns;
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Whole nanoseconds elapsed since [`Stopwatch::start`], saturating
    /// at `u64::MAX` (≈ 584 years).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }
}
