//! Zero-dependency live export: a tiny HTTP/1.1 server over
//! `std::net::TcpListener`.
//!
//! [`MetricsServer::bind`] spawns one background thread that serves:
//!
//! | Path            | Content                                        |
//! |-----------------|------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition of the registry     |
//! | `/metrics.json` | The same snapshot as pretty JSON               |
//! | `/healthz`      | `{"ok":true}` liveness probe                   |
//! | `/spans/recent` | JSON array of the most recent span records     |
//!
//! The server holds only a [`MetricsRegistry`] clone (shared handles)
//! and an optional [`RingSink`], so a long sweep can be scraped while
//! it runs without any coordination with the workers. Connections are
//! handled sequentially with short read timeouts — this is an
//! introspection port, not a web server.

use crate::metrics::MetricsRegistry;
use crate::sink::RingSink;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A live metrics/spans HTTP endpoint on its own thread.
///
/// Shuts down on [`MetricsServer::shutdown`] or drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `registry` — and, when `spans` is given, the ring
    /// of recent span records — in a background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures.
    pub fn bind(
        addr: &str,
        registry: MetricsRegistry,
        spans: Option<Arc<RingSink>>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("rto-obs-serve".to_string())
            .spawn(move || serve_loop(&listener, &registry, spans.as_deref(), &thread_stop))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (with the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_loop(
    listener: &TcpListener,
    registry: &MetricsRegistry,
    spans: Option<&RingSink>,
    stop: &AtomicBool,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
        let _ = handle_connection(&mut stream, registry, spans);
    }
}

/// Reads the request head and writes one response. Errors only bubble
/// to the accept loop, which ignores them — a broken scrape must never
/// disturb the run being observed.
fn handle_connection(
    stream: &mut TcpStream,
    registry: &MetricsRegistry,
    spans: Option<&RingSink>,
) -> std::io::Result<()> {
    let mut buf = [0u8; 4096];
    let mut read = 0;
    while read < buf.len() {
        let n = match stream.read(&mut buf[read..]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) => return Err(e),
        };
        read += n;
        if buf[..read].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..read]);
    let mut request_line = head.lines().next().unwrap_or("").split_whitespace();
    let method = request_line.next().unwrap_or("");
    let path = request_line.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                registry.render_prometheus(),
            ),
            "/metrics.json" => ("200 OK", "application/json", registry.render_json()),
            "/healthz" => ("200 OK", "application/json", "{\"ok\":true}\n".to_string()),
            "/spans/recent" => ("200 OK", "application/json", spans_json(spans)),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };
    let mut response = String::with_capacity(body.len() + 128);
    let _ = std::fmt::Write::write_fmt(
        &mut response,
        format_args!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// The recent span records as a JSON array (empty without a ring).
fn spans_json(spans: Option<&RingSink>) -> String {
    let mut out = String::from("[");
    if let Some(ring) = spans {
        for (i, rec) in ring.recent().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            rec.write_json(&mut out);
        }
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::sink::{Record, TraceSink};
    use crate::span;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let request = format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n");
        stream.write_all(request.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    #[test]
    fn serves_metrics_health_and_spans() {
        let registry = MetricsRegistry::new();
        registry.counter("scrapes_total").add(7);
        registry.histogram("lat_ns").record(1500);
        let ring = Arc::new(RingSink::with_capacity(8));
        ring.record(&Record::spanned(
            5,
            span::job_ctx(0),
            TraceEvent::DeadlineMet {
                job_id: 0,
                task_id: 1,
            },
        ));
        let server =
            MetricsServer::bind("127.0.0.1:0", registry.clone(), Some(ring)).expect("bind");
        let addr = server.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("scrapes_total 7"));
        assert!(metrics.contains("lat_ns_count 1"));

        let json = get(addr, "/metrics.json");
        assert!(json.contains("\"scrapes_total\"") || json.contains("scrapes_total"));

        let health = get(addr, "/healthz");
        assert!(health.contains("{\"ok\":true}"));

        let spans = get(addr, "/spans/recent");
        assert!(spans.contains("\"event\":\"deadline_met\""), "{spans}");
        assert!(spans.contains("\"span\":"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        // Live updates are visible on the next scrape.
        registry.counter("scrapes_total").add(1);
        assert!(get(addr, "/metrics").contains("scrapes_total 8"));

        server.shutdown();
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let server =
            MetricsServer::bind("127.0.0.1:0", MetricsRegistry::new(), None).expect("bind");
        let addr = server.local_addr();
        server.shutdown();
        // The listener is gone: either refused or accepted-then-closed
        // by the OS backlog, but never served by our loop.
        let alive = TcpStream::connect(addr)
            .and_then(|mut s| {
                s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n")?;
                let mut out = String::new();
                s.read_to_string(&mut out)?;
                Ok(out)
            })
            .unwrap_or_default();
        assert!(!alive.contains("\"ok\":true"));
    }
}
