//! Causal span identifiers: one job's lifecycle as a connected tree.
//!
//! A [`SpanId`] names one node in a job's causal tree; a
//! [`SpanContext`] pairs a span with its optional parent. The ids are
//! *deterministic functions of the job id and span kind* — no global
//! counter, no randomness — so two runs of the same system produce
//! byte-identical span annotations, and shards can be merged without id
//! remapping.
//!
//! ## Encoding
//!
//! A span id is a packed `NonZeroU64`: the low 3 bits carry the span
//! kind, the remaining 61 bits carry `job_id + 1` (so the all-zero word
//! never occurs and `Option<SpanId>` is pointer-sized). Raw values below
//! 8 have no job component and name process-wide singleton spans; raw
//! `1` is the ODM decision span.
//!
//! ## The tree a simulated job produces
//!
//! ```text
//! job(j)                      release + deadline verdict
//! ├── phase(j, Setup)         sub-job dispatch/start/complete
//! │   ├── offload(j)          request sent, net transfers, response
//! │   └── timer(j)            compensation timer armed/fired
//! ├── phase(j, PostProcess)   (or Compensation, after a timeout)
//! └── …
//! ```
//!
//! [`summarize`] folds a recorded [`Record`] stream into per-span
//! [`SpanSummary`] rows (the JSONL `spans` view), and
//! [`job_tree_is_connected`] checks the acceptance invariant: every
//! span observed for a job reaches the job root through recorded
//! parents.

use crate::event::Phase;
use crate::sink::Record;
use std::fmt::Write as _;
use std::num::NonZeroU64;

/// Number of low bits reserved for the span kind.
const KIND_BITS: u32 = 3;
/// Largest encodable job id (61 usable bits, minus the `+1` offset).
const MAX_JOB: u64 = (u64::MAX >> KIND_BITS) - 1;

const KIND_JOB: u64 = 0;
const KIND_LOCAL: u64 = 1;
const KIND_SETUP: u64 = 2;
const KIND_POST: u64 = 3;
const KIND_COMP: u64 = 4;
const KIND_OFFLOAD: u64 = 5;
const KIND_TIMER: u64 = 6;

/// A deterministic causal span identifier (never zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(NonZeroU64);

impl SpanId {
    /// Packs `(job_id, kind)`; total (clamps oversized job ids rather
    /// than panicking — lint L3).
    fn pack(job_id: usize, kind: u64) -> SpanId {
        let j = u64::try_from(job_id).unwrap_or(MAX_JOB).min(MAX_JOB);
        // (j + 1) << 3 is at least 8, so the packed word is non-zero;
        // the fallback keeps the constructor total anyway.
        match NonZeroU64::new(((j + 1) << KIND_BITS) | (kind & 0x7)) {
            Some(raw) => SpanId(raw),
            None => SpanId(NonZeroU64::MIN),
        }
    }

    /// The process-wide ODM decision span (raw `1`).
    pub fn odm() -> SpanId {
        SpanId(NonZeroU64::MIN)
    }

    /// The root span of job `job_id`'s causal tree.
    pub fn job(job_id: usize) -> SpanId {
        SpanId::pack(job_id, KIND_JOB)
    }

    /// The span of one execution phase of job `job_id`.
    pub fn phase(job_id: usize, phase: Phase) -> SpanId {
        let kind = match phase {
            Phase::LocalWhole => KIND_LOCAL,
            Phase::Setup => KIND_SETUP,
            Phase::PostProcess => KIND_POST,
            Phase::Compensation => KIND_COMP,
        };
        SpanId::pack(job_id, kind)
    }

    /// The offload round-trip span of job `job_id`.
    pub fn offload(job_id: usize) -> SpanId {
        SpanId::pack(job_id, KIND_OFFLOAD)
    }

    /// The compensation-timer span of job `job_id`.
    pub fn timer(job_id: usize) -> SpanId {
        SpanId::pack(job_id, KIND_TIMER)
    }

    /// The packed representation (for JSON export and flow-event ids).
    pub fn raw(self) -> u64 {
        self.0.get()
    }

    /// Reconstructs a span id from its packed representation.
    pub fn from_raw(raw: u64) -> Option<SpanId> {
        NonZeroU64::new(raw).map(SpanId)
    }

    /// The job this span belongs to, if it has a job component.
    pub fn job_of(self) -> Option<usize> {
        let raw = self.0.get();
        if raw >> KIND_BITS == 0 {
            return None;
        }
        usize::try_from((raw >> KIND_BITS) - 1).ok()
    }

    /// Stable lowercase kind tag used in the `spans` JSONL view.
    pub fn kind_str(self) -> &'static str {
        let raw = self.0.get();
        if raw >> KIND_BITS == 0 {
            return match raw {
                1 => "odm",
                _ => "reserved",
            };
        }
        match raw & 0x7 {
            KIND_JOB => "job",
            KIND_LOCAL => "local",
            KIND_SETUP => "setup",
            KIND_POST => "post_process",
            KIND_COMP => "compensation",
            KIND_OFFLOAD => "offload",
            KIND_TIMER => "timer",
            _ => "reserved",
        }
    }

    /// The parent this span kind has in the canonical job tree, or
    /// `None` for roots (job spans, the ODM span).
    pub fn canonical_parent(self) -> Option<SpanId> {
        let job = self.job_of()?;
        let raw = self.0.get();
        match raw & 0x7 {
            KIND_LOCAL | KIND_SETUP | KIND_POST | KIND_COMP => Some(SpanId::job(job)),
            KIND_OFFLOAD | KIND_TIMER => Some(SpanId::phase(job, Phase::Setup)),
            _ => None,
        }
    }
}

/// A span plus its optional parent: what an emitter attaches to an
/// event. `Copy`, so attaching a context never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// The span this event belongs to.
    pub span: SpanId,
    /// The parent span, if this span is not a root.
    pub parent: Option<SpanId>,
}

impl SpanContext {
    /// A root context (no parent).
    pub fn root(span: SpanId) -> SpanContext {
        SpanContext { span, parent: None }
    }

    /// A child context.
    pub fn child_of(span: SpanId, parent: SpanId) -> SpanContext {
        SpanContext {
            span,
            parent: Some(parent),
        }
    }
}

/// Context for the ODM decision span (a root).
pub fn odm_ctx() -> SpanContext {
    SpanContext::root(SpanId::odm())
}

/// Context for job `job_id`'s root span.
pub fn job_ctx(job_id: usize) -> SpanContext {
    SpanContext::root(SpanId::job(job_id))
}

/// Context for one phase of job `job_id`, parented to the job root.
pub fn phase_ctx(job_id: usize, phase: Phase) -> SpanContext {
    SpanContext::child_of(SpanId::phase(job_id, phase), SpanId::job(job_id))
}

/// Context for job `job_id`'s offload round trip, parented to its setup
/// phase (the offload is caused by setup completing).
pub fn offload_ctx(job_id: usize) -> SpanContext {
    SpanContext::child_of(SpanId::offload(job_id), SpanId::phase(job_id, Phase::Setup))
}

/// Context for job `job_id`'s compensation timer, parented to its setup
/// phase (the timer is armed when the offload departs).
pub fn timer_ctx(job_id: usize) -> SpanContext {
    SpanContext::child_of(SpanId::timer(job_id), SpanId::phase(job_id, Phase::Setup))
}

/// One row of the `spans` view: a span aggregated over every event
/// recorded in it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// The span.
    pub span: SpanId,
    /// Its recorded parent (from the first event that carried one).
    pub parent: Option<SpanId>,
    /// Timestamp of the first event in the span.
    pub first_ts_ns: u64,
    /// Timestamp of the last event in the span.
    pub last_ts_ns: u64,
    /// Number of events recorded in the span.
    pub events: usize,
}

impl SpanSummary {
    /// Appends this summary as one JSON object (the JSONL `spans` view),
    /// with fixed field order: `view`, `span`, `kind`, optional
    /// `job_id`, optional `parent`, `first_ts_ns`, `last_ts_ns`,
    /// `events`.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"view\":\"span\",\"span\":{},\"kind\":\"{}\"",
            self.span.raw(),
            self.span.kind_str()
        );
        if let Some(job) = self.span.job_of() {
            let _ = write!(out, ",\"job_id\":{job}");
        }
        if let Some(parent) = self.parent {
            let _ = write!(out, ",\"parent\":{}", parent.raw());
        }
        let _ = write!(
            out,
            ",\"first_ts_ns\":{},\"last_ts_ns\":{},\"events\":{}}}",
            self.first_ts_ns, self.last_ts_ns, self.events
        );
    }
}

/// Folds a record stream into one [`SpanSummary`] per span, ordered by
/// span id (deterministic regardless of interleaving). Records without
/// a span context are ignored.
pub fn summarize(records: &[Record]) -> Vec<SpanSummary> {
    let mut by_span: std::collections::BTreeMap<SpanId, SpanSummary> =
        std::collections::BTreeMap::new();
    for rec in records {
        let Some(ctx) = rec.span else { continue };
        let entry = by_span.entry(ctx.span).or_insert(SpanSummary {
            span: ctx.span,
            parent: None,
            first_ts_ns: rec.ts_ns,
            last_ts_ns: rec.ts_ns,
            events: 0,
        });
        entry.parent = entry.parent.or(ctx.parent);
        entry.first_ts_ns = entry.first_ts_ns.min(rec.ts_ns);
        entry.last_ts_ns = entry.last_ts_ns.max(rec.ts_ns);
        entry.events += 1;
    }
    by_span.into_values().collect()
}

/// Whether every span observed for `job_id` reaches the job root
/// `SpanId::job(job_id)` through recorded parents — i.e. the job's
/// lifecycle is one connected tree. Jobs with no recorded spans are
/// vacuously disconnected (`false`).
pub fn job_tree_is_connected(summaries: &[SpanSummary], job_id: usize) -> bool {
    let root = SpanId::job(job_id);
    let mine: Vec<&SpanSummary> = summaries
        .iter()
        .filter(|s| s.span.job_of() == Some(job_id))
        .collect();
    if !mine.iter().any(|s| s.span == root) {
        return false;
    }
    let ids: std::collections::BTreeSet<SpanId> = mine.iter().map(|s| s.span).collect();
    mine.iter().all(|s| {
        let mut cur = *s;
        // Walk parents; the tree is at most a few levels deep, but bound
        // the walk so a (malformed) parent cycle cannot hang us.
        for _ in 0..ids.len() + 1 {
            if cur.span == root {
                return true;
            }
            let Some(parent) = cur.parent else {
                return false;
            };
            if parent == root {
                return true;
            }
            match mine.iter().find(|c| c.span == parent) {
                Some(next) => cur = *next,
                None => return false,
            }
        }
        false
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    #[test]
    fn ids_are_deterministic_and_distinct() {
        assert_eq!(SpanId::job(3), SpanId::job(3));
        assert_ne!(SpanId::job(3), SpanId::job(4));
        let all = [
            SpanId::odm(),
            SpanId::job(0),
            SpanId::phase(0, Phase::LocalWhole),
            SpanId::phase(0, Phase::Setup),
            SpanId::phase(0, Phase::PostProcess),
            SpanId::phase(0, Phase::Compensation),
            SpanId::offload(0),
            SpanId::timer(0),
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn raw_round_trips_and_decodes() {
        let s = SpanId::offload(41);
        assert_eq!(SpanId::from_raw(s.raw()), Some(s));
        assert_eq!(s.job_of(), Some(41));
        assert_eq!(s.kind_str(), "offload");
        assert_eq!(SpanId::odm().job_of(), None);
        assert_eq!(SpanId::odm().kind_str(), "odm");
        assert_eq!(SpanId::from_raw(0), None);
    }

    #[test]
    fn oversized_job_ids_clamp_instead_of_wrapping() {
        let s = SpanId::job(usize::MAX);
        assert_eq!(s.kind_str(), "job");
        assert!(s.raw() >= 8);
    }

    #[test]
    fn canonical_parents_form_the_documented_tree() {
        assert_eq!(SpanId::job(2).canonical_parent(), None);
        assert_eq!(
            SpanId::phase(2, Phase::Setup).canonical_parent(),
            Some(SpanId::job(2))
        );
        assert_eq!(
            SpanId::offload(2).canonical_parent(),
            Some(SpanId::phase(2, Phase::Setup))
        );
        assert_eq!(
            SpanId::timer(2).canonical_parent(),
            Some(SpanId::phase(2, Phase::Setup))
        );
        assert_eq!(SpanId::odm().canonical_parent(), None);
    }

    fn met(job_id: usize) -> TraceEvent {
        TraceEvent::DeadlineMet { job_id, task_id: 0 }
    }

    #[test]
    fn summaries_aggregate_and_connectivity_holds() {
        let records = [
            Record::spanned(5, job_ctx(0), met(0)),
            Record::spanned(7, phase_ctx(0, Phase::Setup), met(0)),
            Record::spanned(9, offload_ctx(0), met(0)),
            Record::spanned(11, job_ctx(0), met(0)),
            Record::new(13, met(0)), // span-less records are ignored
        ];
        let sums = summarize(&records);
        assert_eq!(sums.len(), 3);
        let root = sums.iter().find(|s| s.span == SpanId::job(0)).unwrap();
        assert_eq!((root.first_ts_ns, root.last_ts_ns, root.events), (5, 11, 2));
        assert!(job_tree_is_connected(&sums, 0));
        assert!(!job_tree_is_connected(&sums, 1));
    }

    #[test]
    fn orphan_spans_break_connectivity() {
        // An offload span whose setup-phase parent was never recorded.
        let records = [
            Record::spanned(1, job_ctx(4), met(4)),
            Record::spanned(2, offload_ctx(4), met(4)),
        ];
        let sums = summarize(&records);
        assert!(!job_tree_is_connected(&sums, 4));
        // Recording the setup phase reconnects it.
        let records = [
            Record::spanned(1, job_ctx(4), met(4)),
            Record::spanned(2, phase_ctx(4, Phase::Setup), met(4)),
            Record::spanned(3, offload_ctx(4), met(4)),
        ];
        assert!(job_tree_is_connected(&summarize(&records), 4));
    }

    #[test]
    fn span_summary_json_shape() {
        let sums = summarize(&[Record::spanned(3, phase_ctx(1, Phase::Setup), met(1))]);
        let mut out = String::new();
        sums[0].write_json(&mut out);
        assert_eq!(
            out,
            format!(
                "{{\"view\":\"span\",\"span\":{},\"kind\":\"setup\",\"job_id\":1,\"parent\":{},\"first_ts_ns\":3,\"last_ts_ns\":3,\"events\":1}}",
                SpanId::phase(1, Phase::Setup).raw(),
                SpanId::job(1).raw()
            )
        );
        let _: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
    }
}
