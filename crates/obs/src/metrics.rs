//! Hand-rolled metrics: counters, gauges, log-linear histograms, and a
//! registry with Prometheus-text and JSON exporters.
//!
//! Everything is lock-free on the hot path: handles are `Arc`-shared
//! atomics, so instrumented code clones a handle once and then records
//! with plain atomic ops. The registry itself (name → handle) takes a
//! mutex only on registration and snapshot.
//!
//! The histogram uses the classic log-linear bucket layout (as in HDR
//! histograms): values below 2^[`SUB_BITS`] get exact unit buckets;
//! every higher power-of-two range is split into 2^[`SUB_BITS`] linear
//! sub-buckets, bounding relative quantile error at
//! 2^-[`SUB_BITS`] ≈ 3.1%.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
// Under `--cfg loom` the concurrency primitives come from the loom
// model checker so the Counter/Gauge/Histogram hot paths can be
// model-tested (see `tests/loom_metrics.rs` and DESIGN.md §8).
#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(loom)]
use loom::sync::{Arc, Mutex};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // lint: relaxed-ok: independent monotonic tally; no ordering with other memory
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // lint: relaxed-ok: snapshot read of an independent counter; staleness is acceptable
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a free-standing `f64` that can go up and down.
///
/// Besides the value, the gauge keeps a monotone *write stamp* (count
/// of completed writes). Shard export pairs the stamp with the value so
/// merging shards can arbitrate gauges by last-writer-wins
/// deterministically (see [`crate::shard::GaugeShard`]).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
    seq: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        // lint: relaxed-ok: last-writer-wins gauge; no cross-variable ordering needed
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        // lint: relaxed-ok: monotone write tally; shard export tolerates a stale pairing
        self.seq.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        // lint: relaxed-ok: CAS loop re-reads on failure; the single cell is the only shared state
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                // lint: relaxed-ok: success/failure both re-validate the same cell; no other memory is published
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        // lint: relaxed-ok: monotone write tally; shard export tolerates a stale pairing
        self.seq.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // lint: relaxed-ok: snapshot read; staleness is acceptable for a gauge
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Number of completed writes so far (the last-writer-wins stamp
    /// exported in shards).
    pub fn write_seq(&self) -> u64 {
        // lint: relaxed-ok: snapshot read of a monotone tally
        self.seq.load(Ordering::Relaxed)
    }
}

/// Linear sub-bucket resolution: 2^5 = 32 sub-buckets per power of two.
const SUB_BITS: u32 = 5;
/// `2^SUB_BITS` as a literal (and its `usize` twin below): spelled out
/// so the index arithmetic uses target-width constants directly instead
/// of cross-width casts the interval analysis (A4) cannot bound.
const SUB: u64 = 32;
const SUB_USIZE: usize = 32;
const _: () = assert!(SUB == 1 << SUB_BITS && SUB_USIZE as u64 == SUB);
/// Bucket count: 2^SUB_BITS unit buckets + one block of 2^SUB_BITS per
/// exponent SUB_BITS..=63.
const BUCKETS: usize = SUB_USIZE * (64 - SUB_BITS as usize + 1);

#[derive(Debug)]
struct HistCore {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A lock-free log-linear histogram over non-negative integer values
/// (typically nanoseconds or queue depths).
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistCore>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for `v` (log-linear layout).
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    // v >= 32 here, so the exponent is already >= SUB_BITS; the clamp
    // states the range explicitly for the interval analysis (A4).
    let exp = (63 - v.leading_zeros()).clamp(SUB_BITS, 63);
    let block = (exp - SUB_BITS) as usize;
    // The top SUB_BITS+1 bits of v select the linear sub-bucket: the
    // shifted value is in [32, 63], so the subtraction lands in
    // [0, 31]; saturating+min make those bounds explicit.
    let sub = ((v >> (exp - SUB_BITS)).saturating_sub(SUB)).min(SUB - 1) as usize;
    SUB_USIZE + block * SUB_USIZE + sub
}

/// Lower bound of bucket `i` (inverse of [`bucket_index`]).
fn bucket_lower(i: usize) -> u64 {
    if i < SUB_USIZE {
        return i as u64;
    }
    let off = i - SUB_USIZE;
    // In-range indices give block <= 59; the min keeps the shifts
    // provably below 64 even for out-of-range input (A4).
    let block = (off / SUB_USIZE).min(58);
    let sub = (off % SUB_USIZE).min(31) as u64;
    let exp = u32::try_from(block).unwrap_or(58) + SUB_BITS;
    (1u64 << exp) + (sub << (exp - SUB_BITS))
}

/// [`bucket_lower`] over the `u32` indices stored in shard digests.
pub(crate) fn bucket_lower_u32(i: u32) -> u64 {
    bucket_lower(usize::try_from(i).unwrap_or(0))
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(HistCore {
                counts: counts.into_boxed_slice(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let c = &self.core;
        if let Some(slot) = c.counts.get(bucket_index(v)) {
            // lint: relaxed-ok: per-field tallies; snapshot() tolerates torn cross-field views (count/sum/min/max may momentarily disagree)
            slot.fetch_add(1, Ordering::Relaxed);
        }
        // lint: relaxed-ok: see above — aggregate consistency is not promised mid-flight
        c.count.fetch_add(1, Ordering::Relaxed);
        // lint: relaxed-ok: see above
        c.sum.fetch_add(v, Ordering::Relaxed);
        // lint: relaxed-ok: fetch_min is idempotent and order-free
        c.min.fetch_min(v, Ordering::Relaxed);
        // lint: relaxed-ok: fetch_max is idempotent and order-free
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        // lint: relaxed-ok: snapshot read
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        // lint: relaxed-ok: snapshot read
        self.core.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        // lint: relaxed-ok: snapshot read; emptiness re-checked via count
        (self.count() > 0).then(|| self.core.min.load(Ordering::Relaxed))
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        // lint: relaxed-ok: snapshot read; emptiness re-checked via count
        (self.count() > 0).then(|| self.core.max.load(Ordering::Relaxed))
    }

    /// Mean of observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count() > 0).then(|| self.sum() as f64 / self.count() as f64)
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1): the lower bound of the
    /// bucket containing the rank, clamped to the observed min/max.
    /// Relative error ≤ 2^-5 ≈ 3.1%. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil().clamp(0.0, u64::MAX as f64) as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, slot) in self.core.counts.iter().enumerate() {
            // lint: relaxed-ok: quantiles are approximate by design (±3.1%); racing records only shift the estimate
            seen += slot.load(Ordering::Relaxed);
            if seen >= rank {
                let lo = bucket_lower(i).max(self.min().unwrap_or(0));
                return Some(lo.min(self.max().unwrap_or(u64::MAX)));
            }
        }
        self.max()
    }

    /// Exports the full bucket state as a mergeable
    /// [`HistogramDigest`](crate::shard::HistogramDigest) (sparse:
    /// only non-empty buckets are included).
    pub fn digest(&self) -> crate::shard::HistogramDigest {
        let c = &self.core;
        let buckets = c
            .counts
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                // lint: relaxed-ok: snapshot read; digests are point-in-time exports
                let n = slot.load(Ordering::Relaxed);
                (n > 0).then(|| crate::shard::BucketCount {
                    // BUCKETS = 1920, far below u32::MAX; total fallback
                    // anyway (lint L3).
                    index: u32::try_from(i).unwrap_or(u32::MAX),
                    count: n,
                })
            })
            .collect();
        crate::shard::HistogramDigest {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            buckets,
        }
    }
}

/// Default ring capacity (in time buckets) of a windowed [`Series`].
const SERIES_WINDOW: usize = 64;

#[derive(Debug, Default)]
struct SeriesInner {
    bucket_width_ns: u64,
    points: std::collections::VecDeque<crate::shard::TimePoint>,
}

/// A windowed time series: observations fold into fixed-width time
/// buckets, and only the most recent [`SERIES_WINDOW`] buckets are kept
/// (a ring), bounding memory for arbitrarily long runs.
///
/// Not a hot-path primitive (it takes a mutex); record at coarse-grained
/// progress points — e.g. once per finished trial — not per event.
#[derive(Debug, Clone, Default)]
pub struct Series {
    inner: Arc<Mutex<SeriesInner>>,
}

impl Series {
    /// A series whose bucket width is fixed at construction (the
    /// registry creates every series this way, so no post-registration
    /// locking is needed).
    fn with_width(bucket_width_ns: u64) -> Series {
        Series {
            inner: Arc::new(Mutex::new(SeriesInner {
                bucket_width_ns: bucket_width_ns.max(1),
                points: std::collections::VecDeque::new(),
            })),
        }
    }

    /// Lock with poison recovery (ring pushes only; lint L3).
    fn lock(&self) -> std::sync::MutexGuard<'_, SeriesInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records `value` at `ts_ns`. Observations land in the bucket
    /// containing `ts_ns`; an observation older than the retained
    /// window is dropped.
    pub fn record(&self, ts_ns: u64, value: u64) {
        let mut inner = self.lock();
        let width = inner.bucket_width_ns.max(1);
        // lint: allow(L1): bucket flooring on a u64 ns timestamp; obs sits below rto-core, so `Duration` is unavailable
        let start_ns = ts_ns - ts_ns % width;
        // The window is small (64 buckets); a linear scan beats keeping
        // an index structure.
        if let Some(p) = inner.points.iter_mut().find(|p| p.start_ns == start_ns) {
            p.count = p.count.saturating_add(1);
            p.sum = p.sum.saturating_add(value);
            return;
        }
        // A new bucket. The ring stays sorted by start time, so an
        // observation older than the newest retained bucket (and not in
        // any retained bucket) is dropped.
        if inner.points.back().is_some_and(|b| b.start_ns > start_ns) {
            return;
        }
        if inner.points.len() == SERIES_WINDOW {
            inner.points.pop_front();
        }
        // analyze: allow(A7): bounded ring — the pop_front above caps the deque at SERIES_WINDOW
        inner.points.push_back(crate::shard::TimePoint {
            start_ns,
            count: 1,
            sum: value,
        });
    }

    /// Exports the retained window as a mergeable
    /// [`SeriesShard`](crate::shard::SeriesShard).
    pub fn shard(&self) -> crate::shard::SeriesShard {
        let inner = self.lock();
        crate::shard::SeriesShard {
            bucket_width_ns: inner.bucket_width_ns,
            points: inner.points.iter().copied().collect(),
        }
    }
}

/// One exported counter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// One exported gauge value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Gauge value.
    pub value: f64,
}

/// One exported histogram, reduced to summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation; `None` when the histogram is empty, so a
    /// histogram that *observed* zeros is distinguishable from one that
    /// observed nothing.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub min: Option<u64>,
    /// Largest observation (`None` when empty).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max: Option<u64>,
    /// Approximate median (`None` when empty).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub p50: Option<u64>,
    /// Approximate 90th percentile (`None` when empty).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub p90: Option<u64>,
    /// Approximate 99th percentile (`None` when empty).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub p99: Option<u64>,
}

/// One exported windowed time series (see [`Series`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeriesSample {
    /// Metric name.
    pub name: String,
    /// Width of each time bucket in nanoseconds.
    pub bucket_width_ns: u64,
    /// Retained buckets, oldest first.
    pub points: Vec<crate::shard::TimePoint>,
}

/// A point-in-time export of a whole registry, ordered by metric name.
///
/// Serializable, comparable, and embeddable in reports (the simulator
/// carries one inside `SimReport`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, by name.
    pub counters: Vec<CounterSample>,
    /// All gauges, by name.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, by name.
    pub histograms: Vec<HistogramSample>,
    /// All windowed time series, by name (absent in older snapshots,
    /// omitted when no series are registered — so pre-series JSON stays
    /// byte-identical).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub series: Vec<SeriesSample>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram sample by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.series.is_empty()
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, Series>,
}

/// A named collection of metrics.
///
/// Cloning is cheap and shares the underlying metrics, so the same
/// registry can be handed to the simulator, the server models, and the
/// decision manager, then exported once at the end.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the name→handle map, recovering from poisoning: the
    /// guarded state is structurally simple (map inserts and reads), so
    /// a panic elsewhere while holding the lock cannot leave it
    /// inconsistent, and metrics must never take the process down
    /// (lint L3).
    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Returns (registering on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.lock();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.lock();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns (registering on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns (registering on first use) the windowed time series
    /// `name` with the given bucket width. The width is fixed on first
    /// registration; later calls return the existing series unchanged.
    pub fn series(&self, name: &str, bucket_width_ns: u64) -> Series {
        let mut inner = self.lock();
        inner
            .series
            .entry(name.to_string())
            .or_insert_with(|| Series::with_width(bucket_width_ns))
            .clone()
    }

    /// Exports every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, c)| CounterSample {
                    name: name.clone(),
                    value: c.get(),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, g)| GaugeSample {
                    name: name.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| HistogramSample {
                    name: name.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min(),
                    max: h.max(),
                    p50: h.quantile(0.50),
                    p90: h.quantile(0.90),
                    p99: h.quantile(0.99),
                })
                .collect(),
            series: inner
                .series
                .iter()
                .map(|(name, s)| {
                    let shard = s.shard();
                    SeriesSample {
                        name: name.clone(),
                        bucket_width_ns: shard.bucket_width_ns,
                        points: shard.points,
                    }
                })
                .collect(),
        }
    }

    /// Exports every metric as a mergeable
    /// [`MetricsShard`](crate::shard::MetricsShard) — the per-worker
    /// unit the sharded sweep dispatcher combines with
    /// [`MetricsShard::merge`](crate::shard::MetricsShard::merge).
    pub fn shard(&self) -> crate::shard::MetricsShard {
        let inner = self.lock();
        crate::shard::MetricsShard {
            counters: inner
                .counters
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, g)| {
                    (
                        name.clone(),
                        crate::shard::GaugeShard {
                            seq: g.write_seq(),
                            bits: g.get().to_bits(),
                        },
                    )
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.digest()))
                .collect(),
            series: inner
                .series
                .iter()
                .map(|(name, s)| (name.clone(), s.shard()))
                .collect(),
        }
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (histograms export as summaries with `quantile` labels).
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for c in &snap.counters {
            let name = sanitize(&c.name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.value);
        }
        for g in &snap.gauges {
            let name = sanitize(&g.name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {:?}", g.value);
        }
        for h in &snap.histograms {
            let name = sanitize(&h.name);
            let _ = writeln!(out, "# TYPE {name} summary");
            // Empty histograms export only _sum/_count: a `quantile`
            // sample of 0 would be indistinguishable from observed
            // zeros.
            for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.99, h.p99)] {
                if let Some(v) = v {
                    let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
                }
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }

    /// Renders the snapshot as a JSON document.
    pub fn render_json(&self) -> String {
        // Snapshots are plain data with an infallible Serialize impl;
        // fall back to an empty object rather than panic (lint L3).
        serde_json::to_string_pretty(&self.snapshot()).unwrap_or_else(|_| "{}".to_string())
    }
}

/// Maps a metric name onto the Prometheus charset `[a-zA-Z0-9_:]`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("rto.offloads");
        c.inc();
        c.add(4);
        // Second handle shares state.
        assert_eq!(reg.counter("rto.offloads").get(), 5);
        let g = reg.gauge("queue_depth");
        g.set(3.0);
        g.add(-1.5);
        assert!((reg.gauge("queue_depth").get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bucket_index_is_monotone_and_invertible() {
        let mut prev = None;
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            let lo = bucket_lower(i);
            assert!(lo <= v, "lower bound {lo} above value {v}");
            if let Some((pv, pi)) = prev {
                assert!(i >= pi, "index not monotone: {pv}->{pi}, {v}->{i}");
            }
            prev = Some((v, i));
        }
        // Unit buckets are exact below 32.
        for v in 0..32u64 {
            assert_eq!(bucket_lower(bucket_index(v)), v);
        }
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        let p50 = h.quantile(0.5).unwrap() as f64;
        let p99 = h.quantile(0.99).unwrap() as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.05, "p99 {p99}");
        assert!((h.mean().unwrap() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn snapshot_is_ordered_and_queryable() {
        let reg = MetricsRegistry::new();
        reg.counter("b").inc();
        reg.counter("a").add(2);
        reg.histogram("lat").record(10);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].name, "a");
        assert_eq!(snap.counters[1].name, "b");
        assert_eq!(snap.counter("a"), Some(2));
        assert_eq!(snap.counter("missing"), None);
        let lat = snap.histogram("lat").unwrap();
        assert_eq!(lat.count, 1);
        assert_eq!(lat.min, Some(10));
        assert!(!snap.is_empty());
        assert!(MetricsSnapshot::default().is_empty());
    }

    #[test]
    fn empty_histogram_snapshot_is_distinguishable_from_zeros() {
        let reg = MetricsRegistry::new();
        let _ = reg.histogram("empty");
        reg.histogram("zeros").record(0);
        let snap = reg.snapshot();

        let empty = snap.histogram("empty").unwrap();
        assert_eq!(empty.count, 0);
        assert_eq!((empty.min, empty.max), (None, None));
        assert_eq!((empty.p50, empty.p90, empty.p99), (None, None, None));

        let zeros = snap.histogram("zeros").unwrap();
        assert_eq!(zeros.count, 1);
        assert_eq!((zeros.min, zeros.max), (Some(0), Some(0)));
        assert_eq!(zeros.p50, Some(0));

        // JSON omits the keys entirely for the empty histogram…
        let json = serde_json::to_string(empty).unwrap();
        assert!(!json.contains("\"min\""), "empty: {json}");
        // …but spells out observed zeros.
        let json = serde_json::to_string(zeros).unwrap();
        assert!(json.contains("\"min\":0"), "zeros: {json}");

        // And both round-trip.
        let back: MetricsSnapshot =
            serde_json::from_str(&serde_json::to_string(&snap).unwrap()).unwrap();
        assert_eq!(snap, back);

        // Prometheus text: no quantile samples for the empty histogram,
        // but _count/_sum still present.
        let text = reg.render_prometheus();
        assert!(text.contains("empty_count 0"));
        assert!(!text.contains("empty{quantile"));
        assert!(text.contains("zeros{quantile=\"0.5\"} 0"));
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.counter("offloads").add(7);
        reg.gauge("util").set(0.25);
        reg.histogram("ns").record(1234);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("rto.misses").inc();
        reg.gauge("rto.util").set(0.5);
        reg.histogram("rto.response-ns").record(100);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE rto_misses counter"));
        assert!(text.contains("rto_misses 1"));
        assert!(text.contains("# TYPE rto_util gauge"));
        assert!(text.contains("rto_util 0.5"));
        assert!(text.contains("# TYPE rto_response_ns summary"));
        assert!(text.contains("rto_response_ns{quantile=\"0.5\"}"));
        assert!(text.contains("rto_response_ns_count 1"));
    }

    #[test]
    fn gauge_add_is_atomic_under_contention() {
        let g = Gauge::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        g.add(1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!((g.get() - 4000.0).abs() < 1e-9);
    }
}
