//! Trace sinks: where [`Record`]s go.
//!
//! A [`TraceSink`] receives timestamped, span-annotated records from
//! the instrumented runtime. Six implementations cover the common
//! cases:
//!
//! * [`NullSink`] — the default; discards everything with near-zero
//!   overhead (no locks, no allocation, `enabled()` is `false` so
//!   emitters can skip event construction entirely).
//! * [`MemorySink`] — buffers records in memory, for tests and analysis.
//! * [`RingSink`] — keeps only the most recent records (bounded memory),
//!   backing the live `/spans/recent` endpoint.
//! * [`JsonlSink`] — one JSON object per line, append-only, suitable
//!   for `jq`/pandas pipelines and golden-file testing.
//! * [`ChromeTraceSink`] — Chrome/Perfetto trace-event JSON with
//!   `B`/`E` duration spans on a CPU lane and per-request server lanes,
//!   `i` instants for point events, and `s`/`f` flow arrows tying an
//!   offload's CPU side to its server lane when records carry span
//!   contexts. Load the output at `chrome://tracing` or
//!   <https://ui.perfetto.dev>.
//! * [`FanoutSink`] — duplicates every record to several child sinks.

use crate::event::TraceEvent;
use crate::span::SpanContext;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// One recorded observation: a timestamp, an optional causal span
/// context, and the event itself. All-`Copy`, so recording through the
/// disabled path never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Monotonic timestamp in nanoseconds (simulated time for the
    /// simulator, host time for the experiment engine, 0 for offline
    /// emitters).
    pub ts_ns: u64,
    /// The causal span this event belongs to, if the emitter knows it.
    pub span: Option<SpanContext>,
    /// The event.
    pub event: TraceEvent,
}

impl Record {
    /// A record with no span context.
    pub fn new(ts_ns: u64, event: TraceEvent) -> Record {
        Record {
            ts_ns,
            span: None,
            event,
        }
    }

    /// A record annotated with a span context.
    pub fn spanned(ts_ns: u64, ctx: SpanContext, event: TraceEvent) -> Record {
        Record {
            ts_ns,
            span: Some(ctx),
            event,
        }
    }

    /// Appends this record as one JSON object (no trailing newline):
    /// the event's fixed-order fields, then — only when a span context
    /// is attached — `span` and optional `parent` as the *last* keys,
    /// so span-less output stays byte-identical to the pre-span format.
    pub fn write_json(&self, out: &mut String) {
        self.event.write_json(self.ts_ns, out);
        if let Some(ctx) = self.span {
            out.pop();
            let _ = write!(out, ",\"span\":{}", ctx.span.raw());
            if let Some(parent) = ctx.parent {
                let _ = write!(out, ",\"parent\":{}", parent.raw());
            }
            out.push('}');
        }
    }

    /// Renders this record as one JSON line (convenience wrapper around
    /// [`Record::write_json`]).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(112);
        self.write_json(&mut s);
        s
    }
}

/// A destination for trace records.
///
/// Implementations must be thread-safe: the registry hands out
/// `Arc<dyn TraceSink>` and sub-systems may record concurrently.
pub trait TraceSink: Send + Sync {
    /// Whether this sink wants records at all. Emitters may (but need
    /// not) skip event construction when this returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one observation.
    fn record(&self, rec: &Record);
}

/// The default sink: discards every record.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&self, _rec: &Record) {}
}

/// An in-memory sink for tests and post-hoc analysis.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<Record>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the record buffer, recovering from poisoning: appends to a
    /// `Vec` cannot leave it inconsistent, and observability must never
    /// take the process down (lint L3).
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Record>> {
        self.records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Clones out everything recorded so far, in record order.
    pub fn snapshot(&self) -> Vec<Record> {
        self.lock().clone()
    }

    /// Clones out `(ts_ns, event)` pairs, dropping span annotations —
    /// the pre-span view most assertions want.
    pub fn events(&self) -> Vec<(u64, TraceEvent)> {
        self.lock().iter().map(|r| (r.ts_ns, r.event)).collect()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<Record> {
        std::mem::take(&mut *self.lock())
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn record(&self, rec: &Record) {
        self.lock().push(*rec);
    }
}

/// A bounded in-memory sink that keeps only the most recent records.
///
/// Backs the live `/spans/recent` endpoint: long sweeps can run with
/// tracing on without unbounded memory growth.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    records: Mutex<VecDeque<Record>>,
}

impl RingSink {
    /// Creates a ring keeping at most `capacity` records (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            records: Mutex::new(VecDeque::new()),
        }
    }

    /// Lock with poison recovery (append/pop only; lint L3).
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Record>> {
        self.records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The most recent records, oldest first.
    pub fn recent(&self) -> Vec<Record> {
        self.lock().iter().copied().collect()
    }

    /// Number of records currently held (at most the capacity).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing is currently held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RingSink {
    fn record(&self, rec: &Record) {
        let mut buf = self.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(*rec);
    }
}

/// Duplicates every record to several child sinks.
///
/// Enabled iff any child is; disabled children are skipped per record.
pub struct FanoutSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl FanoutSink {
    /// Fans out to `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("children", &self.sinks.len())
            .finish()
    }
}

impl TraceSink for FanoutSink {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn record(&self, rec: &Record) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.record(rec);
            }
        }
    }
}

/// Writes one JSON object per line to any [`Write`] target.
///
/// I/O errors cannot propagate through [`TraceSink::record`]; the sink
/// records the first failure and reports it via
/// [`JsonlSink::had_io_error`] and on [`JsonlSink::into_inner`].
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
    errored: AtomicBool,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
            errored: AtomicBool::new(false),
        }
    }

    /// Whether any write so far failed.
    pub fn had_io_error(&self) -> bool {
        // lint: relaxed-ok: sticky error flag; readers only need eventual visibility
        self.errored.load(Ordering::Relaxed)
    }

    /// Appends one pre-rendered line (no trailing newline needed) to
    /// the stream, with the same swallowed-error discipline as
    /// [`TraceSink::record`]. Used for auxiliary JSONL views (e.g. the
    /// `spans` summary rows) that share the event stream's file.
    pub fn write_line(&self, line: &str) {
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if w.write_all(line.as_bytes()).is_err() || w.write_all(b"\n").is_err() {
            // lint: relaxed-ok: sticky one-way flag; ordering with the write itself is irrelevant
            self.errored.store(true, Ordering::Relaxed);
        }
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Reports a previously swallowed write error or a flush failure.
    pub fn into_inner(self) -> std::io::Result<W> {
        let mut w = self
            .writer
            .into_inner()
            // Poison recovery: the writer state survives a panic intact
            // enough to flush; a swallowed panic must not cascade
            // (lint L3).
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        w.flush()?;
        // lint: relaxed-ok: sticky error flag read after the writer mutex synchronized
        if self.errored.load(Ordering::Relaxed) {
            return Err(std::io::Error::other("a trace write failed earlier"));
        }
        Ok(w)
    }
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) `path` and streams JSONL into it.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlSink::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, rec: &Record) {
        let mut line = String::with_capacity(112);
        rec.write_json(&mut line);
        line.push('\n');
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if w.write_all(line.as_bytes()).is_err() {
            // lint: relaxed-ok: sticky one-way flag; ordering with the write itself is irrelevant
            self.errored.store(true, Ordering::Relaxed);
        }
    }
}

/// The CPU lane's Chrome thread id.
const CPU_TID: u64 = 0;
/// First server lane; each concurrently in-flight request gets its own.
const SERVER_TID_BASE: u64 = 100;

/// The Chrome `tid` of server lane `lane`, with the lane index bounded
/// before widening so the interval analysis (A4) can prove the
/// arithmetic never wraps. 65 535 concurrent lanes is far beyond any
/// real trace.
fn lane_tid(lane: usize) -> u64 {
    SERVER_TID_BASE + lane.min(65_535) as u64
}

#[derive(Debug, Default)]
struct ChromeState {
    /// `(ts_ns, rendered trace-event JSON)`, in record order. Rendering
    /// stable-sorts by timestamp, so out-of-order arrivals from
    /// multi-threaded runs cannot misorder the document.
    events: Vec<(u64, String)>,
    /// `Some(job_id)` per occupied server lane.
    server_lanes: Vec<Option<usize>>,
    /// High-water mark of server lanes ever used (for metadata).
    lanes_used: usize,
    /// Whether a CPU span is currently open (for balance at render).
    cpu_open: Option<(usize, usize)>,
    /// Largest timestamp seen.
    last_ts_ns: u64,
}

/// Collects records into Chrome/Perfetto trace-event JSON.
///
/// * Sub-job execution renders as `B`/`E` spans on the CPU lane
///   (`tid 0`): `SubJobDispatched` opens, `SubJobPreempted` /
///   `SubJobCompleted` close. On a uniprocessor the spans nest
///   trivially.
/// * Each in-flight offload renders as a `B`/`E` span on its own server
///   lane (`tid 100+`), opened by `OffloadRequestSent` and closed by
///   `ServerResponseArrived` or `OffloadRequestLost`. When the record
///   carries a span context, Perfetto flow arrows (`ph:"s"`/`ph:"f"`)
///   link the CPU side to the server lane in both directions.
/// * Everything else renders as an `i` instant.
///
/// The document always carries stable `process_name`/`thread_name`
/// metadata and emits events in nondecreasing `ts` order, so Perfetto
/// never drops or misorders events from multi-threaded `rto-exp` runs.
///
/// Call [`ChromeTraceSink::render`] at the end to get the complete JSON
/// document (open spans are closed at the last seen timestamp).
#[derive(Debug, Default)]
pub struct ChromeTraceSink {
    state: Mutex<ChromeState>,
}

fn chrome_ts(ts_ns: u64) -> f64 {
    // lint: allow(L4): already-recorded observational ns sample; Chrome's trace format wants f64 microseconds
    ts_ns as f64 / 1000.0
}

fn push_span(events: &mut Vec<(u64, String)>, ph: char, name: &str, ts_ns: u64, tid: u64) {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{:?},\"pid\":1,\"tid\":{tid}}}",
        chrome_ts(ts_ns)
    );
    events.push((ts_ns, s));
}

fn push_instant(events: &mut Vec<(u64, String)>, name: &str, ts_ns: u64, tid: u64, detail: &str) {
    let mut s = String::with_capacity(128);
    let _ = write!(
        s,
        "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:?},\"pid\":1,\"tid\":{tid},\"args\":{{{detail}}}}}",
        chrome_ts(ts_ns)
    );
    events.push((ts_ns, s));
}

/// One leg of a Perfetto flow arrow. `ph` is `'s'` (start) or `'f'`
/// (finish; rendered with `bp:"e"` so it binds to the enclosing slice).
fn push_flow(events: &mut Vec<(u64, String)>, ph: char, id: &str, ts_ns: u64, tid: u64) {
    let mut s = String::with_capacity(128);
    let bp = if ph == 'f' { ",\"bp\":\"e\"" } else { "" };
    let _ = write!(
        s,
        "{{\"name\":\"offload\",\"cat\":\"offload\",\"ph\":\"{ph}\",\"id\":\"{id}\"{bp},\"ts\":{:?},\"pid\":1,\"tid\":{tid}}}",
        chrome_ts(ts_ns)
    );
    events.push((ts_ns, s));
}

impl ChromeTraceSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the accumulated Chrome state, recovering from poisoning
    /// (appends only — a panic cannot corrupt it; lint L3).
    fn lock(&self) -> std::sync::MutexGuard<'_, ChromeState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Renders the complete Chrome trace-event JSON document.
    ///
    /// Open spans (e.g. a response that never arrived) are closed at the
    /// last recorded timestamp so the file always loads cleanly.
    pub fn render(&self) -> String {
        let state = self.lock();
        let mut out = String::with_capacity(64 + state.events.len() * 100);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut emit = |s: &str, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(s);
        };
        // Stable process/lane names first, so viewers label the rows.
        emit(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"rto\"}}",
            &mut out,
        );
        emit(
            "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":1,\"args\":{\"sort_index\":0}}",
            &mut out,
        );
        let mut meta = String::new();
        let _ = write!(
            meta,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{CPU_TID},\"args\":{{\"name\":\"cpu\"}}}}"
        );
        emit(&meta, &mut out);
        for lane in 0..state.lanes_used {
            let mut meta = String::new();
            let _ = write!(
                meta,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"server slot {lane}\"}}}}",
                lane_tid(lane)
            );
            emit(&meta, &mut out);
        }
        // Monotonic ts order: stable sort keeps the record order of
        // equal-timestamp events (so B precedes E at the same instant).
        let mut ordered: Vec<&(u64, String)> = state.events.iter().collect();
        ordered.sort_by_key(|e| e.0);
        for (_, e) in ordered {
            emit(e, &mut out);
        }
        // Balance any open spans at the final timestamp.
        let mut closers: Vec<(u64, String)> = Vec::new();
        if let Some((job, task)) = state.cpu_open {
            push_span(
                &mut closers,
                'E',
                &format!("T{task}/J{job}"),
                state.last_ts_ns,
                CPU_TID,
            );
        }
        for (lane, slot) in state.server_lanes.iter().enumerate() {
            if let Some(job) = slot {
                push_span(
                    &mut closers,
                    'E',
                    &format!("J{job} offload"),
                    state.last_ts_ns,
                    lane_tid(lane),
                );
            }
        }
        for (_, c) in &closers {
            emit(c, &mut out);
        }
        out.push_str("]}");
        out
    }

    /// Renders and writes the document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }

    /// Number of trace-event records collected so far.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for ChromeTraceSink {
    fn record(&self, rec: &Record) {
        let ts_ns = rec.ts_ns;
        let mut state = self.lock();
        state.last_ts_ns = state.last_ts_ns.max(ts_ns);
        match rec.event {
            TraceEvent::SubJobDispatched { .. } => {
                // Dispatch is readiness, not execution; instant only.
                let detail = format!("\"job\":{}", rec.event.job_id().unwrap_or(0));
                push_instant(&mut state.events, rec.event.kind(), ts_ns, CPU_TID, &detail);
            }
            TraceEvent::SubJobStarted {
                job_id, task_id, ..
            } => {
                // Close a dangling span first (defensive; should not happen).
                if let Some((j, t)) = state.cpu_open.take() {
                    push_span(
                        &mut state.events,
                        'E',
                        &format!("T{t}/J{j}"),
                        ts_ns,
                        CPU_TID,
                    );
                }
                state.cpu_open = Some((job_id, task_id));
                push_span(
                    &mut state.events,
                    'B',
                    &format!("T{task_id}/J{job_id}"),
                    ts_ns,
                    CPU_TID,
                );
            }
            TraceEvent::SubJobPreempted {
                job_id, task_id, ..
            }
            | TraceEvent::SubJobCompleted {
                job_id, task_id, ..
            } => {
                // Close only the matching span: zero-work sub-jobs can
                // complete while another sub-job holds the processor.
                if state.cpu_open == Some((job_id, task_id)) {
                    state.cpu_open = None;
                    push_span(
                        &mut state.events,
                        'E',
                        &format!("T{task_id}/J{job_id}"),
                        ts_ns,
                        CPU_TID,
                    );
                }
            }
            TraceEvent::OffloadRequestSent { job_id, .. } => {
                let lane = state
                    .server_lanes
                    .iter()
                    .position(Option::is_none)
                    .unwrap_or_else(|| {
                        state.server_lanes.push(None);
                        state.server_lanes.len() - 1
                    });
                if let Some(slot) = state.server_lanes.get_mut(lane) {
                    *slot = Some(job_id);
                }
                state.lanes_used = state.lanes_used.max(lane + 1);
                push_span(
                    &mut state.events,
                    'B',
                    &format!("J{job_id} offload"),
                    ts_ns,
                    lane_tid(lane),
                );
                // Causal arrow: CPU (setup completion) -> server lane.
                if rec.span.is_some() {
                    let id = format!("J{job_id}req");
                    push_flow(&mut state.events, 's', &id, ts_ns, CPU_TID);
                    push_flow(&mut state.events, 'f', &id, ts_ns, lane_tid(lane));
                }
            }
            TraceEvent::OffloadRequestLost { job_id, .. }
            | TraceEvent::ServerResponseArrived { job_id, .. } => {
                if let Some(lane) = state
                    .server_lanes
                    .iter()
                    .position(|slot| *slot == Some(job_id))
                {
                    if let Some(slot) = state.server_lanes.get_mut(lane) {
                        *slot = None;
                    }
                    push_span(
                        &mut state.events,
                        'E',
                        &format!("J{job_id} offload"),
                        ts_ns,
                        lane_tid(lane),
                    );
                    // Causal arrow back: server lane -> CPU, for
                    // responses that actually arrived.
                    if rec.span.is_some()
                        && matches!(rec.event, TraceEvent::ServerResponseArrived { .. })
                    {
                        let id = format!("J{job_id}resp");
                        push_flow(&mut state.events, 's', &id, ts_ns, lane_tid(lane));
                        push_flow(&mut state.events, 'f', &id, ts_ns, CPU_TID);
                    }
                } else {
                    push_instant(
                        &mut state.events,
                        rec.event.kind(),
                        ts_ns,
                        CPU_TID,
                        &format!("\"job\":{job_id}"),
                    );
                }
            }
            _ => {
                let mut detail = String::new();
                if let Some(j) = rec.event.job_id() {
                    let _ = write!(detail, "\"job\":{j}");
                }
                if let Some(t) = rec.event.task_id() {
                    if !detail.is_empty() {
                        detail.push(',');
                    }
                    let _ = write!(detail, "\"task\":{t}");
                }
                push_instant(&mut state.events, rec.event.kind(), ts_ns, CPU_TID, &detail);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;
    use crate::span;

    fn rec(ts_ns: u64, event: TraceEvent) -> Record {
        Record::new(ts_ns, event)
    }

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.record(&rec(
            0,
            TraceEvent::DeadlineMet {
                job_id: 0,
                task_id: 0,
            },
        ));
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = MemorySink::new();
        sink.record(&rec(
            1,
            TraceEvent::DeadlineMet {
                job_id: 0,
                task_id: 0,
            },
        ));
        sink.record(&rec(
            2,
            TraceEvent::DeadlineMissed {
                job_id: 1,
                task_id: 0,
            },
        ));
        let records = sink.take();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].ts_ns, 1);
        assert!(matches!(
            records[1].event,
            TraceEvent::DeadlineMissed { job_id: 1, .. }
        ));
        assert!(sink.is_empty());
    }

    #[test]
    fn ring_sink_keeps_only_the_newest() {
        let sink = RingSink::with_capacity(2);
        for job_id in 0..5 {
            sink.record(&rec(
                job_id as u64,
                TraceEvent::DeadlineMet { job_id, task_id: 0 },
            ));
        }
        let recent = sink.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].ts_ns, 3);
        assert_eq!(recent[1].ts_ns, 4);
    }

    #[test]
    fn fanout_duplicates_to_enabled_children() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let fan = FanoutSink::new(vec![a.clone(), Arc::new(NullSink), b.clone()]);
        assert!(fan.enabled());
        fan.record(&rec(
            9,
            TraceEvent::DeadlineMet {
                job_id: 0,
                task_id: 0,
            },
        ));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert!(!FanoutSink::new(vec![Arc::new(NullSink)]).enabled());
    }

    #[test]
    fn record_json_appends_span_fields_last() {
        let e = TraceEvent::JobReleased {
            job_id: 3,
            task_id: 1,
            deadline_ns: 50,
        };
        // Span-less output is byte-identical to the event encoding.
        assert_eq!(rec(12, e).to_json(), e.to_json(12));
        let spanned = Record::spanned(12, span::job_ctx(3), e).to_json();
        assert_eq!(
            spanned,
            format!(
                "{}\"span\":{}}}",
                e.to_json(12).trim_end_matches('}').to_string() + ",",
                span::SpanId::job(3).raw()
            )
        );
        let with_parent = Record::spanned(12, span::phase_ctx(3, Phase::Setup), e).to_json();
        assert!(with_parent.ends_with(&format!(
            "\"span\":{},\"parent\":{}}}",
            span::SpanId::phase(3, Phase::Setup).raw(),
            span::SpanId::job(3).raw()
        )));
        let _: serde_json::Value = serde_json::from_str(&with_parent).expect("valid JSON");
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let sink = JsonlSink::new(Vec::<u8>::new());
        sink.record(&rec(
            5,
            TraceEvent::JobReleased {
                job_id: 0,
                task_id: 1,
                deadline_ns: 9,
            },
        ));
        sink.record(&rec(
            6,
            TraceEvent::DeadlineMet {
                job_id: 0,
                task_id: 1,
            },
        ));
        sink.write_line("{\"view\":\"span\"}");
        assert!(!sink.had_io_error());
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"ts_ns\":5,\"event\":\"job_released\""));
        assert!(lines[1].contains("deadline_met"));
        assert_eq!(lines[2], "{\"view\":\"span\"}");
    }

    #[test]
    fn chrome_sink_produces_balanced_spans() {
        let sink = ChromeTraceSink::new();
        sink.record(&rec(
            0,
            TraceEvent::SubJobStarted {
                job_id: 0,
                task_id: 0,
                phase: Phase::Setup,
            },
        ));
        sink.record(&rec(
            10,
            TraceEvent::SubJobCompleted {
                job_id: 0,
                task_id: 0,
                phase: Phase::Setup,
            },
        ));
        sink.record(&rec(
            10,
            TraceEvent::OffloadRequestSent {
                job_id: 0,
                task_id: 0,
                payload_bytes: 64,
            },
        ));
        sink.record(&rec(
            30,
            TraceEvent::ServerResponseArrived {
                job_id: 0,
                task_id: 0,
                late: false,
            },
        ));
        let doc = sink.render();
        assert_eq!(doc.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(doc.matches("\"ph\":\"E\"").count(), 2);
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"process_name\""));
        // Valid JSON end to end.
        let _: serde_json::Value = serde_json::from_str(&doc).expect("chrome doc parses");
    }

    #[test]
    fn chrome_sink_closes_dangling_spans_on_render() {
        let sink = ChromeTraceSink::new();
        sink.record(&rec(
            0,
            TraceEvent::OffloadRequestSent {
                job_id: 7,
                task_id: 1,
                payload_bytes: 1,
            },
        ));
        sink.record(&rec(
            50,
            TraceEvent::DeadlineMissed {
                job_id: 7,
                task_id: 1,
            },
        ));
        let doc = sink.render();
        // The never-answered request still gets an E at the last ts.
        assert_eq!(doc.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(doc.matches("\"ph\":\"E\"").count(), 1);
        assert!(doc.contains("\"ph\":\"i\""));
    }

    #[test]
    fn chrome_lanes_are_reused_and_named() {
        let sink = ChromeTraceSink::new();
        // Two overlapping requests -> two lanes; a third after one frees
        // reuses lane 0.
        sink.record(&rec(
            0,
            TraceEvent::OffloadRequestSent {
                job_id: 0,
                task_id: 0,
                payload_bytes: 1,
            },
        ));
        sink.record(&rec(
            1,
            TraceEvent::OffloadRequestSent {
                job_id: 1,
                task_id: 1,
                payload_bytes: 1,
            },
        ));
        sink.record(&rec(
            2,
            TraceEvent::ServerResponseArrived {
                job_id: 0,
                task_id: 0,
                late: false,
            },
        ));
        sink.record(&rec(
            3,
            TraceEvent::OffloadRequestSent {
                job_id: 2,
                task_id: 0,
                payload_bytes: 1,
            },
        ));
        sink.record(&rec(
            4,
            TraceEvent::ServerResponseArrived {
                job_id: 1,
                task_id: 1,
                late: false,
            },
        ));
        sink.record(&rec(
            5,
            TraceEvent::ServerResponseArrived {
                job_id: 2,
                task_id: 0,
                late: false,
            },
        ));
        let doc = sink.render();
        assert!(doc.contains("server slot 0"));
        assert!(doc.contains("server slot 1"));
        assert!(!doc.contains("server slot 2"));
    }

    #[test]
    fn chrome_spanned_offloads_emit_flow_arrows() {
        let sink = ChromeTraceSink::new();
        sink.record(&Record::spanned(
            10,
            span::offload_ctx(0),
            TraceEvent::OffloadRequestSent {
                job_id: 0,
                task_id: 0,
                payload_bytes: 64,
            },
        ));
        sink.record(&Record::spanned(
            30,
            span::offload_ctx(0),
            TraceEvent::ServerResponseArrived {
                job_id: 0,
                task_id: 0,
                late: false,
            },
        ));
        let doc = sink.render();
        assert_eq!(doc.matches("\"ph\":\"s\"").count(), 2);
        assert_eq!(doc.matches("\"ph\":\"f\"").count(), 2);
        assert!(doc.contains("\"id\":\"J0req\""));
        assert!(doc.contains("\"id\":\"J0resp\""));
        let _: serde_json::Value = serde_json::from_str(&doc).expect("chrome doc parses");
    }

    #[test]
    fn chrome_render_orders_out_of_order_timestamps() {
        let sink = ChromeTraceSink::new();
        // Multi-threaded emitters can record out of timestamp order.
        sink.record(&rec(
            50,
            TraceEvent::DeadlineMet {
                job_id: 1,
                task_id: 0,
            },
        ));
        sink.record(&rec(
            5,
            TraceEvent::DeadlineMissed {
                job_id: 0,
                task_id: 0,
            },
        ));
        let doc = sink.render();
        let positions: Vec<usize> = ["deadline_missed", "deadline_met"]
            .iter()
            .map(|k| doc.find(k).expect("event present"))
            .collect();
        assert!(positions[0] < positions[1], "render must sort by ts");
    }
}
