//! Trace sinks: where [`TraceEvent`]s go.
//!
//! A [`TraceSink`] receives timestamped events from the instrumented
//! runtime. Four implementations cover the common cases:
//!
//! * [`NullSink`] — the default; discards everything with near-zero
//!   overhead (no locks, no allocation, `enabled()` is `false` so
//!   emitters can skip event construction entirely).
//! * [`MemorySink`] — buffers events in memory, for tests and analysis.
//! * [`JsonlSink`] — one JSON object per line, append-only, suitable
//!   for `jq`/pandas pipelines and golden-file testing.
//! * [`ChromeTraceSink`] — Chrome/Perfetto trace-event JSON with
//!   `B`/`E` duration spans on a CPU lane and per-request server lanes,
//!   plus `i` instants for point events. Load the output at
//!   `chrome://tracing` or <https://ui.perfetto.dev>.

use crate::event::TraceEvent;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A destination for trace events.
///
/// Implementations must be thread-safe: the registry hands out
/// `Arc<dyn TraceSink>` and sub-systems may record concurrently.
pub trait TraceSink: Send + Sync {
    /// Whether this sink wants events at all. Emitters may (but need
    /// not) skip event construction when this returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event stamped at `ts_ns` (monotonic simulation time).
    fn record(&self, ts_ns: u64, event: &TraceEvent);
}

/// The default sink: discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&self, _ts_ns: u64, _event: &TraceEvent) {}
}

/// An in-memory sink for tests and post-hoc analysis.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<(u64, TraceEvent)>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the event buffer, recovering from poisoning: appends to a
    /// `Vec` cannot leave it inconsistent, and observability must never
    /// take the process down (lint L3).
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<(u64, TraceEvent)>> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Clones out everything recorded so far, in record order.
    pub fn snapshot(&self) -> Vec<(u64, TraceEvent)> {
        self.lock().clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<(u64, TraceEvent)> {
        std::mem::take(&mut *self.lock())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn record(&self, ts_ns: u64, event: &TraceEvent) {
        self.lock().push((ts_ns, *event));
    }
}

/// Writes one JSON object per line to any [`Write`] target.
///
/// I/O errors cannot propagate through [`TraceSink::record`]; the sink
/// records the first failure and reports it via
/// [`JsonlSink::had_io_error`] and on [`JsonlSink::into_inner`].
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
    errored: AtomicBool,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
            errored: AtomicBool::new(false),
        }
    }

    /// Whether any write so far failed.
    pub fn had_io_error(&self) -> bool {
        // lint: relaxed-ok: sticky error flag; readers only need eventual visibility
        self.errored.load(Ordering::Relaxed)
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Reports a previously swallowed write error or a flush failure.
    pub fn into_inner(self) -> std::io::Result<W> {
        let mut w = self
            .writer
            .into_inner()
            // Poison recovery: the writer state survives a panic intact
            // enough to flush; a swallowed panic must not cascade
            // (lint L3).
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        w.flush()?;
        // lint: relaxed-ok: sticky error flag read after the writer mutex synchronized
        if self.errored.load(Ordering::Relaxed) {
            return Err(std::io::Error::other("a trace write failed earlier"));
        }
        Ok(w)
    }
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) `path` and streams JSONL into it.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlSink::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, ts_ns: u64, event: &TraceEvent) {
        let mut line = String::with_capacity(112);
        event.write_json(ts_ns, &mut line);
        line.push('\n');
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if w.write_all(line.as_bytes()).is_err() {
            // lint: relaxed-ok: sticky one-way flag; ordering with the write itself is irrelevant
            self.errored.store(true, Ordering::Relaxed);
        }
    }
}

/// The CPU lane's Chrome thread id.
const CPU_TID: u64 = 0;
/// First server lane; each concurrently in-flight request gets its own.
const SERVER_TID_BASE: u64 = 100;

#[derive(Debug, Default)]
struct ChromeState {
    /// Rendered trace-event JSON objects, in record order.
    events: Vec<String>,
    /// `Some(job_id)` per occupied server lane.
    server_lanes: Vec<Option<usize>>,
    /// High-water mark of server lanes ever used (for metadata).
    lanes_used: usize,
    /// Whether a CPU span is currently open (for balance at render).
    cpu_open: Option<(usize, usize)>,
    /// Largest timestamp seen.
    last_ts_ns: u64,
}

/// Collects events into Chrome/Perfetto trace-event JSON.
///
/// * Sub-job execution renders as `B`/`E` spans on the CPU lane
///   (`tid 0`): `SubJobDispatched` opens, `SubJobPreempted` /
///   `SubJobCompleted` close. On a uniprocessor the spans nest
///   trivially.
/// * Each in-flight offload renders as a `B`/`E` span on its own server
///   lane (`tid 100+`), opened by `OffloadRequestSent` and closed by
///   `ServerResponseArrived` or `OffloadRequestLost`.
/// * Everything else renders as an `i` instant.
///
/// Call [`ChromeTraceSink::render`] at the end to get the complete JSON
/// document (open spans are closed at the last seen timestamp).
#[derive(Debug, Default)]
pub struct ChromeTraceSink {
    state: Mutex<ChromeState>,
}

fn chrome_ts(ts_ns: u64) -> f64 {
    // lint: allow(L4): already-recorded observational ns sample; Chrome's trace format wants f64 microseconds
    ts_ns as f64 / 1000.0
}

fn push_span(events: &mut Vec<String>, ph: char, name: &str, ts_ns: u64, tid: u64) {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{:?},\"pid\":1,\"tid\":{tid}}}",
        chrome_ts(ts_ns)
    );
    events.push(s);
}

fn push_instant(events: &mut Vec<String>, name: &str, ts_ns: u64, tid: u64, detail: &str) {
    let mut s = String::with_capacity(128);
    let _ = write!(
        s,
        "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:?},\"pid\":1,\"tid\":{tid},\"args\":{{{detail}}}}}",
        chrome_ts(ts_ns)
    );
    events.push(s);
}

impl ChromeTraceSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the accumulated Chrome state, recovering from poisoning
    /// (appends only — a panic cannot corrupt it; lint L3).
    fn lock(&self) -> std::sync::MutexGuard<'_, ChromeState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Renders the complete Chrome trace-event JSON document.
    ///
    /// Open spans (e.g. a response that never arrived) are closed at the
    /// last recorded timestamp so the file always loads cleanly.
    pub fn render(&self) -> String {
        let state = self.lock();
        let mut out = String::with_capacity(64 + state.events.len() * 100);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut emit = |s: &str, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(s);
        };
        // Lane names first, so viewers label the rows.
        let mut meta = String::new();
        let _ = write!(
            meta,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{CPU_TID},\"args\":{{\"name\":\"cpu\"}}}}"
        );
        emit(&meta, &mut out);
        for lane in 0..state.lanes_used {
            let mut meta = String::new();
            let _ = write!(
                meta,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"server slot {lane}\"}}}}",
                SERVER_TID_BASE + lane as u64
            );
            emit(&meta, &mut out);
        }
        for e in &state.events {
            emit(e, &mut out);
        }
        // Balance any open spans at the final timestamp.
        let mut closers: Vec<String> = Vec::new();
        if let Some((job, task)) = state.cpu_open {
            push_span(
                &mut closers,
                'E',
                &format!("T{task}/J{job}"),
                state.last_ts_ns,
                CPU_TID,
            );
        }
        for (lane, slot) in state.server_lanes.iter().enumerate() {
            if let Some(job) = slot {
                push_span(
                    &mut closers,
                    'E',
                    &format!("J{job} offload"),
                    state.last_ts_ns,
                    SERVER_TID_BASE + lane as u64,
                );
            }
        }
        for c in &closers {
            emit(c, &mut out);
        }
        out.push_str("]}");
        out
    }

    /// Renders and writes the document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }

    /// Number of trace-event records collected so far.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for ChromeTraceSink {
    fn record(&self, ts_ns: u64, event: &TraceEvent) {
        let mut state = self.lock();
        state.last_ts_ns = state.last_ts_ns.max(ts_ns);
        match *event {
            TraceEvent::SubJobDispatched { .. } => {
                // Dispatch is readiness, not execution; instant only.
                let detail = format!("\"job\":{}", event.job_id().unwrap_or(0));
                push_instant(&mut state.events, event.kind(), ts_ns, CPU_TID, &detail);
            }
            TraceEvent::SubJobStarted {
                job_id, task_id, ..
            } => {
                // Close a dangling span first (defensive; should not happen).
                if let Some((j, t)) = state.cpu_open.take() {
                    push_span(
                        &mut state.events,
                        'E',
                        &format!("T{t}/J{j}"),
                        ts_ns,
                        CPU_TID,
                    );
                }
                state.cpu_open = Some((job_id, task_id));
                push_span(
                    &mut state.events,
                    'B',
                    &format!("T{task_id}/J{job_id}"),
                    ts_ns,
                    CPU_TID,
                );
            }
            TraceEvent::SubJobPreempted {
                job_id, task_id, ..
            }
            | TraceEvent::SubJobCompleted {
                job_id, task_id, ..
            } => {
                // Close only the matching span: zero-work sub-jobs can
                // complete while another sub-job holds the processor.
                if state.cpu_open == Some((job_id, task_id)) {
                    state.cpu_open = None;
                    push_span(
                        &mut state.events,
                        'E',
                        &format!("T{task_id}/J{job_id}"),
                        ts_ns,
                        CPU_TID,
                    );
                }
            }
            TraceEvent::OffloadRequestSent { job_id, .. } => {
                let lane = state
                    .server_lanes
                    .iter()
                    .position(Option::is_none)
                    .unwrap_or_else(|| {
                        state.server_lanes.push(None);
                        state.server_lanes.len() - 1
                    });
                if let Some(slot) = state.server_lanes.get_mut(lane) {
                    *slot = Some(job_id);
                }
                state.lanes_used = state.lanes_used.max(lane + 1);
                push_span(
                    &mut state.events,
                    'B',
                    &format!("J{job_id} offload"),
                    ts_ns,
                    SERVER_TID_BASE + lane as u64,
                );
            }
            TraceEvent::OffloadRequestLost { job_id, .. }
            | TraceEvent::ServerResponseArrived { job_id, .. } => {
                if let Some(lane) = state
                    .server_lanes
                    .iter()
                    .position(|slot| *slot == Some(job_id))
                {
                    if let Some(slot) = state.server_lanes.get_mut(lane) {
                        *slot = None;
                    }
                    push_span(
                        &mut state.events,
                        'E',
                        &format!("J{job_id} offload"),
                        ts_ns,
                        SERVER_TID_BASE + lane as u64,
                    );
                } else {
                    push_instant(
                        &mut state.events,
                        event.kind(),
                        ts_ns,
                        CPU_TID,
                        &format!("\"job\":{job_id}"),
                    );
                }
            }
            _ => {
                let mut detail = String::new();
                if let Some(j) = event.job_id() {
                    let _ = write!(detail, "\"job\":{j}");
                }
                if let Some(t) = event.task_id() {
                    if !detail.is_empty() {
                        detail.push(',');
                    }
                    let _ = write!(detail, "\"task\":{t}");
                }
                push_instant(&mut state.events, event.kind(), ts_ns, CPU_TID, &detail);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.record(
            0,
            &TraceEvent::DeadlineMet {
                job_id: 0,
                task_id: 0,
            },
        );
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = MemorySink::new();
        sink.record(
            1,
            &TraceEvent::DeadlineMet {
                job_id: 0,
                task_id: 0,
            },
        );
        sink.record(
            2,
            &TraceEvent::DeadlineMissed {
                job_id: 1,
                task_id: 0,
            },
        );
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].0, 1);
        assert!(matches!(
            events[1].1,
            TraceEvent::DeadlineMissed { job_id: 1, .. }
        ));
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let sink = JsonlSink::new(Vec::<u8>::new());
        sink.record(
            5,
            &TraceEvent::JobReleased {
                job_id: 0,
                task_id: 1,
                deadline_ns: 9,
            },
        );
        sink.record(
            6,
            &TraceEvent::DeadlineMet {
                job_id: 0,
                task_id: 1,
            },
        );
        assert!(!sink.had_io_error());
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ts_ns\":5,\"event\":\"job_released\""));
        assert!(lines[1].contains("deadline_met"));
    }

    #[test]
    fn chrome_sink_produces_balanced_spans() {
        let sink = ChromeTraceSink::new();
        sink.record(
            0,
            &TraceEvent::SubJobStarted {
                job_id: 0,
                task_id: 0,
                phase: Phase::Setup,
            },
        );
        sink.record(
            10,
            &TraceEvent::SubJobCompleted {
                job_id: 0,
                task_id: 0,
                phase: Phase::Setup,
            },
        );
        sink.record(
            10,
            &TraceEvent::OffloadRequestSent {
                job_id: 0,
                task_id: 0,
                payload_bytes: 64,
            },
        );
        sink.record(
            30,
            &TraceEvent::ServerResponseArrived {
                job_id: 0,
                task_id: 0,
                late: false,
            },
        );
        let doc = sink.render();
        assert_eq!(doc.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(doc.matches("\"ph\":\"E\"").count(), 2);
        assert!(doc.contains("\"traceEvents\""));
        // Valid JSON end to end.
        let _: serde_json::Value = serde_json::from_str(&doc).expect("chrome doc parses");
    }

    #[test]
    fn chrome_sink_closes_dangling_spans_on_render() {
        let sink = ChromeTraceSink::new();
        sink.record(
            0,
            &TraceEvent::OffloadRequestSent {
                job_id: 7,
                task_id: 1,
                payload_bytes: 1,
            },
        );
        sink.record(
            50,
            &TraceEvent::DeadlineMissed {
                job_id: 7,
                task_id: 1,
            },
        );
        let doc = sink.render();
        // The never-answered request still gets an E at the last ts.
        assert_eq!(doc.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(doc.matches("\"ph\":\"E\"").count(), 1);
        assert!(doc.contains("\"ph\":\"i\""));
    }

    #[test]
    fn chrome_lanes_are_reused_and_named() {
        let sink = ChromeTraceSink::new();
        // Two overlapping requests -> two lanes; a third after one frees
        // reuses lane 0.
        sink.record(
            0,
            &TraceEvent::OffloadRequestSent {
                job_id: 0,
                task_id: 0,
                payload_bytes: 1,
            },
        );
        sink.record(
            1,
            &TraceEvent::OffloadRequestSent {
                job_id: 1,
                task_id: 1,
                payload_bytes: 1,
            },
        );
        sink.record(
            2,
            &TraceEvent::ServerResponseArrived {
                job_id: 0,
                task_id: 0,
                late: false,
            },
        );
        sink.record(
            3,
            &TraceEvent::OffloadRequestSent {
                job_id: 2,
                task_id: 0,
                payload_bytes: 1,
            },
        );
        sink.record(
            4,
            &TraceEvent::ServerResponseArrived {
                job_id: 1,
                task_id: 1,
                late: false,
            },
        );
        sink.record(
            5,
            &TraceEvent::ServerResponseArrived {
                job_id: 2,
                task_id: 0,
                late: false,
            },
        );
        let doc = sink.render();
        assert!(doc.contains("server slot 0"));
        assert!(doc.contains("server slot 1"));
        assert!(!doc.contains("server slot 2"));
    }
}
