//! Mergeable per-shard metric exports.
//!
//! A [`MetricsShard`] is the unit a sharded sweep dispatcher collects
//! from each worker and folds together with [`MetricsShard::merge`].
//! The merge obeys the monoid laws — **associative**, **commutative**,
//! with the empty shard as **identity** — so the combined result is
//! independent of worker count, completion order, and fold shape
//! (verified by proptests in `tests/merge_laws.rs`). That is what makes
//! a `--jobs 8` sweep's merged metrics byte-identical to the serial
//! run's.
//!
//! Per family:
//!
//! * **Counters** merge by saturating addition.
//! * **Gauges** merge by *last-writer-wins*, arbitrated
//!   deterministically: the entry with the larger `(seq, bits)` pair
//!   wins, where `seq` counts completed writes on the source gauge.
//!   Ties on `seq` (two shards that wrote equally often) fall back to
//!   the larger bit pattern — arbitrary but total, so the merge stays
//!   commutative. Gauges are stored as exact `f64` bits; merging never
//!   does float arithmetic.
//! * **Histogram digests** merge by adding sparse bucket counts
//!   (merge-join on bucket index) and combining count/sum/min/max.
//! * **Series** (windowed time buckets) merge by summing per-bucket
//!   counts/sums keyed on bucket start time. The merge is a lossless
//!   union — only the *live recorder* windows its ring — so the laws
//!   hold unconditionally.
//!
//! Everything here serializes through the workspace serde with
//! `BTreeMap`-ordered keys, so equal shards render byte-identical JSON.

use crate::metrics::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot, SeriesSample};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One non-empty histogram bucket: the log-linear bucket index and its
/// observation count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Log-linear bucket index (see `rto_obs::metrics` layout docs).
    pub index: u32,
    /// Observations in this bucket.
    pub count: u64,
}

/// A snapshot of a histogram's full bucket state, sparse and mergeable.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramDigest {
    /// Total observations.
    pub count: u64,
    /// Sum of observations (saturating).
    pub sum: u64,
    /// Smallest observation (`None` when empty).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub min: Option<u64>,
    /// Largest observation (`None` when empty).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max: Option<u64>,
    /// Non-empty buckets, sorted ascending by index.
    pub buckets: Vec<BucketCount>,
}

/// Combines two optional extrema with `pick` (min or max).
fn merge_opt(a: Option<u64>, b: Option<u64>, pick: fn(u64, u64) -> u64) -> Option<u64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(pick(a, b)),
        (x, None) | (None, x) => x,
    }
}

impl HistogramDigest {
    /// Folds `other` into `self` (associative, commutative; the empty
    /// digest is the identity).
    pub fn merge(&mut self, other: &HistogramDigest) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = merge_opt(self.min, other.min, u64::min);
        self.max = merge_opt(self.max, other.max, u64::max);
        // Merge-join the two index-sorted sparse bucket lists.
        let mut merged = Vec::with_capacity(self.buckets.len().max(other.buckets.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(a), Some(b)) if a.index == b.index => {
                    merged.push(BucketCount {
                        index: a.index,
                        count: a.count.saturating_add(b.count),
                    });
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a.index < b.index => {
                    merged.push(*a);
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    merged.push(*b);
                    j += 1;
                }
                (Some(a), None) => {
                    merged.push(*a);
                    i += 1;
                }
                (None, Some(b)) => {
                    merged.push(*b);
                    j += 1;
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate `q`-quantile, same semantics as
    /// [`Histogram::quantile`](crate::metrics::Histogram::quantile).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil().clamp(0.0, u64::MAX as f64) as u64)
            .clamp(1, self.count);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen = seen.saturating_add(b.count);
            if seen >= rank {
                let lo = crate::metrics::bucket_lower_u32(b.index).max(self.min.unwrap_or(0));
                return Some(lo.min(self.max.unwrap_or(u64::MAX)));
            }
        }
        self.max
    }

    /// Reduces the digest to the summary-statistics sample format used
    /// in [`MetricsSnapshot`].
    pub fn to_sample(&self, name: &str) -> HistogramSample {
        HistogramSample {
            name: name.to_string(),
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// A gauge exported for merging: exact value bits plus the source
/// gauge's write stamp. Merging keeps the entry with the larger
/// `(seq, bits)` pair (last-writer-wins, deterministic tie-break).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GaugeShard {
    /// Completed writes on the source gauge when exported.
    pub seq: u64,
    /// The gauge value as raw `f64` bits (exact; no float arithmetic).
    pub bits: u64,
}

impl GaugeShard {
    /// The gauge value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits)
    }

    /// Folds `other` into `self` by last-writer-wins.
    pub fn merge(&mut self, other: &GaugeShard) {
        if (other.seq, other.bits) > (self.seq, self.bits) {
            *self = *other;
        }
    }
}

/// One time bucket of a windowed series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimePoint {
    /// Bucket start, ns (inclusive; the bucket covers one width).
    pub start_ns: u64,
    /// Observations in the bucket.
    pub count: u64,
    /// Sum of observed values in the bucket.
    pub sum: u64,
}

/// A windowed series exported for merging: buckets sorted ascending by
/// start time.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SeriesShard {
    /// Width of each time bucket in nanoseconds (0 only for the empty
    /// identity shard; merge keeps the larger width).
    pub bucket_width_ns: u64,
    /// Buckets, sorted ascending by `start_ns`.
    pub points: Vec<TimePoint>,
}

impl SeriesShard {
    /// Folds `other` into `self`: per-bucket sums keyed on start time,
    /// lossless union (the live recorder is what windows the ring).
    pub fn merge(&mut self, other: &SeriesShard) {
        self.bucket_width_ns = self.bucket_width_ns.max(other.bucket_width_ns);
        let mut merged = Vec::with_capacity(self.points.len().max(other.points.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.points.len() || j < other.points.len() {
            match (self.points.get(i), other.points.get(j)) {
                (Some(a), Some(b)) if a.start_ns == b.start_ns => {
                    merged.push(TimePoint {
                        start_ns: a.start_ns,
                        count: a.count.saturating_add(b.count),
                        sum: a.sum.saturating_add(b.sum),
                    });
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a.start_ns < b.start_ns => {
                    merged.push(*a);
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    merged.push(*b);
                    j += 1;
                }
                (Some(a), None) => {
                    merged.push(*a);
                    i += 1;
                }
                (None, Some(b)) => {
                    merged.push(*b);
                    j += 1;
                }
                (None, None) => break,
            }
        }
        self.points = merged;
    }
}

/// Every metric of one worker, exported in mergeable form.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsShard {
    /// Counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, GaugeShard>,
    /// Histogram digests by name.
    pub histograms: BTreeMap<String, HistogramDigest>,
    /// Windowed series by name (absent in older exports).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub series: BTreeMap<String, SeriesShard>,
}

impl MetricsShard {
    /// Folds `other` into `self` (associative, commutative; the empty
    /// shard is the identity).
    pub fn merge(&mut self, other: &MetricsShard) {
        for (name, value) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*value);
        }
        for (name, g) in &other.gauges {
            self.gauges.entry(name.clone()).or_default().merge(g);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
        for (name, s) in &other.series {
            self.series.entry(name.clone()).or_default().merge(s);
        }
    }

    /// Whether nothing was exported.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.series.is_empty()
    }

    /// Reduces the shard to the summary-statistics snapshot format
    /// (what reports embed and Prometheus renders from).
    pub fn to_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, value)| CounterSample {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(name, g)| GaugeSample {
                    name: name.clone(),
                    value: g.value(),
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| h.to_sample(name))
                .collect(),
            series: self
                .series
                .iter()
                .map(|(name, s)| SeriesSample {
                    name: name.clone(),
                    bucket_width_ns: s.bucket_width_ns,
                    points: s.points.clone(),
                })
                .collect(),
        }
    }

    /// Canonical JSON encoding (`BTreeMap`-ordered keys): equal shards
    /// render byte-identical strings.
    pub fn to_json(&self) -> String {
        // Plain data with an infallible Serialize impl; never panic
        // from an exporter (lint L3).
        serde_json::to_string(self).unwrap_or_else(|_| "{}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, MetricsRegistry};

    #[test]
    fn registry_shard_reflects_recorded_values() {
        let reg = MetricsRegistry::new();
        reg.counter("jobs").add(3);
        reg.gauge("util").set(0.75);
        reg.histogram("lat").record(100);
        reg.series("done", 10).record(25, 2);
        let shard = reg.shard();
        assert_eq!(shard.counters.get("jobs"), Some(&3));
        assert_eq!(shard.gauges.get("util").map(GaugeShard::value), Some(0.75));
        assert_eq!(shard.histograms.get("lat").map(|h| h.count), Some(1));
        assert_eq!(
            shard.series.get("done").map(|s| s.points.clone()),
            Some(vec![TimePoint {
                start_ns: 20,
                count: 1,
                sum: 2
            }])
        );
        assert!(!shard.is_empty());
        assert!(MetricsShard::default().is_empty());
    }

    #[test]
    fn digest_matches_live_histogram_stats() {
        let h = Histogram::new();
        for v in [0u64, 5, 31, 32, 1000, 1_000_000] {
            h.record(v);
        }
        let d = h.digest();
        assert_eq!(d.count, h.count());
        assert_eq!(d.sum, h.sum());
        assert_eq!(d.min, h.min());
        assert_eq!(d.max, h.max());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(d.quantile(q), h.quantile(q), "q={q}");
        }
        assert_eq!(d.mean(), h.mean());
    }

    #[test]
    fn merged_digest_equals_single_histogram_over_all_values() {
        let (a, b, whole) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 0..500u64 {
            a.record(v * 7);
            whole.record(v * 7);
        }
        for v in 0..300u64 {
            b.record(v * 13 + 1);
            whole.record(v * 13 + 1);
        }
        let mut merged = a.digest();
        merged.merge(&b.digest());
        assert_eq!(merged, whole.digest());
    }

    #[test]
    fn gauge_merge_is_last_writer_wins() {
        let newer = GaugeShard {
            seq: 5,
            bits: 2.0f64.to_bits(),
        };
        let older = GaugeShard {
            seq: 3,
            bits: 9.0f64.to_bits(),
        };
        let mut m = older;
        m.merge(&newer);
        assert_eq!(m, newer);
        let mut m = newer;
        m.merge(&older);
        assert_eq!(m, newer);
    }

    #[test]
    fn series_merge_unions_buckets() {
        let a = SeriesShard {
            bucket_width_ns: 10,
            points: vec![
                TimePoint {
                    start_ns: 0,
                    count: 1,
                    sum: 4,
                },
                TimePoint {
                    start_ns: 20,
                    count: 2,
                    sum: 6,
                },
            ],
        };
        let b = SeriesShard {
            bucket_width_ns: 10,
            points: vec![
                TimePoint {
                    start_ns: 10,
                    count: 1,
                    sum: 1,
                },
                TimePoint {
                    start_ns: 20,
                    count: 1,
                    sum: 5,
                },
            ],
        };
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(
            m.points,
            vec![
                TimePoint {
                    start_ns: 0,
                    count: 1,
                    sum: 4
                },
                TimePoint {
                    start_ns: 10,
                    count: 1,
                    sum: 1
                },
                TimePoint {
                    start_ns: 20,
                    count: 3,
                    sum: 11
                },
            ]
        );
    }

    #[test]
    fn equal_shards_render_identical_json() {
        let mk = || {
            let reg = MetricsRegistry::new();
            reg.counter("a").add(2);
            reg.gauge("g").set(1.5);
            reg.histogram("h").record(7);
            reg.shard()
        };
        assert_eq!(mk().to_json(), mk().to_json());
    }

    #[test]
    fn shard_to_snapshot_matches_registry_snapshot() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(4);
        reg.gauge("g").set(-2.5);
        reg.histogram("h").record(10);
        reg.histogram("h").record(1000);
        assert_eq!(reg.shard().to_snapshot(), reg.snapshot());
    }
}
