//! # rto-obs — structured tracing + metrics for the rto stack
//!
//! Zero-dependency (std + the workspace's serde/serde_json) observability
//! substrate shared by the simulator, the server models, and the
//! offloading decision manager:
//!
//! * **Trace layer** — a [`TraceEvent`] taxonomy covering every
//!   observable runtime transition (releases, dispatches, preemptions,
//!   offload round-trips, compensation timers, deadline outcomes, ODM
//!   decisions), stamped into [`Record`]s — optionally annotated with a
//!   causal [`SpanContext`] — and recorded through a [`TraceSink`].
//!   Ships six sinks: [`NullSink`] (default, allocation-free),
//!   [`MemorySink`] (tests), [`RingSink`] (bounded, live endpoints),
//!   [`JsonlSink`] (one JSON object per line), [`ChromeTraceSink`]
//!   (Chrome/Perfetto trace-event JSON with flow arrows), and
//!   [`FanoutSink`].
//! * **Span layer** — deterministic [`SpanId`]s tie one job's whole
//!   lifecycle (release → ODM → offload → network → completion) into a
//!   connected tree; see [`span`].
//! * **Metrics layer** — hand-rolled [`Counter`], [`Gauge`], log-linear
//!   [`Histogram`], and windowed [`Series`] handles in a
//!   [`MetricsRegistry`], exported as a serializable
//!   [`MetricsSnapshot`], Prometheus text, JSON, or a mergeable
//!   per-worker [`MetricsShard`] (see [`shard`] for the merge laws).
//! * **Live export** — [`serve::MetricsServer`], a zero-dependency HTTP
//!   endpoint exposing `/metrics`, `/metrics.json`, `/healthz`, and
//!   `/spans/recent` while a run is in flight.
//! * **[`Obs`]** — the bundle the instrumented crates actually thread
//!   around: one shared sink plus one shared registry.
//!
//! ## Design notes
//!
//! * Events are plain `Copy` data and serialize through hand-written
//!   JSON, so the disabled path ([`NullSink`]) performs no heap
//!   allocation per event — a counting-allocator test enforces this.
//! * Timestamps are plain `u64` nanoseconds. The simulator stamps
//!   simulated time; offline emitters (the ODM) stamp zero.
//! * `rto-obs` sits at the bottom of the crate graph (no rto
//!   dependencies), so every other crate can depend on it without
//!   cycles.
//!
//! ## Example
//!
//! ```
//! use rto_obs::{MemorySink, Obs, TraceEvent};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let obs = Obs::with_sink(sink.clone());
//! obs.emit(5, TraceEvent::DeadlineMet { job_id: 0, task_id: 3 });
//! obs.metrics().counter("deadlines_met").inc();
//!
//! assert_eq!(sink.len(), 1);
//! assert_eq!(obs.metrics().snapshot().counter("deadlines_met"), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod metrics;
pub mod serve;
pub mod shard;
pub mod sink;
pub mod span;

pub use clock::Stopwatch;
pub use event::{Phase, TraceEvent};
pub use metrics::{
    Counter, CounterSample, Gauge, GaugeSample, Histogram, HistogramSample, MetricsRegistry,
    MetricsSnapshot, Series, SeriesSample,
};
pub use shard::{GaugeShard, HistogramDigest, MetricsShard, SeriesShard};
pub use sink::{
    ChromeTraceSink, FanoutSink, JsonlSink, MemorySink, NullSink, Record, RingSink, TraceSink,
};
pub use span::{SpanContext, SpanId};

use std::sync::Arc;

/// The observability context instrumented code threads around: one
/// shared trace sink plus one shared metrics registry.
///
/// Cloning shares both. The default context is *disabled*: a
/// [`NullSink`] plus a fresh registry, costing nothing per event.
#[derive(Clone)]
pub struct Obs {
    sink: Arc<dyn TraceSink>,
    metrics: MetricsRegistry,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.sink.enabled())
            .finish_non_exhaustive()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::disabled()
    }
}

impl Obs {
    /// A context that records nothing (the default).
    pub fn disabled() -> Self {
        Obs {
            sink: Arc::new(NullSink),
            metrics: MetricsRegistry::new(),
        }
    }

    /// A context tracing into `sink` with a fresh registry.
    pub fn with_sink(sink: Arc<dyn TraceSink>) -> Self {
        Obs {
            sink,
            metrics: MetricsRegistry::new(),
        }
    }

    /// A context with both parts supplied.
    pub fn new(sink: Arc<dyn TraceSink>, metrics: MetricsRegistry) -> Self {
        Obs { sink, metrics }
    }

    /// The trace sink.
    pub fn sink(&self) -> &Arc<dyn TraceSink> {
        &self.sink
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Whether the sink wants events.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Records `event` at `ts_ns` (no span context) if tracing is
    /// enabled.
    #[inline]
    // analyze: hot-path
    pub fn emit(&self, ts_ns: u64, event: TraceEvent) {
        if self.sink.enabled() {
            self.sink.record(&Record::new(ts_ns, event));
        }
    }

    /// Records `event` inside span context `ctx` if tracing is enabled.
    #[inline]
    // analyze: hot-path
    pub fn emit_in(&self, ts_ns: u64, ctx: SpanContext, event: TraceEvent) {
        if self.sink.enabled() {
            self.sink.record(&Record::spanned(ts_ns, ctx, event));
        }
    }

    /// Records `event` with an optional span context — the form relay
    /// code uses when the context travels with a request and may be
    /// absent.
    #[inline]
    // analyze: hot-path
    pub fn emit_with(&self, ts_ns: u64, ctx: Option<SpanContext>, event: TraceEvent) {
        if self.sink.enabled() {
            self.sink.record(&Record {
                ts_ns,
                span: ctx,
                event,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_is_disabled() {
        let obs = Obs::default();
        assert!(!obs.tracing_enabled());
        obs.emit(
            0,
            TraceEvent::DeadlineMet {
                job_id: 0,
                task_id: 0,
            },
        );
        assert!(obs.metrics().snapshot().is_empty());
    }

    #[test]
    fn clones_share_sink_and_registry() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::with_sink(sink.clone());
        let obs2 = obs.clone();
        obs2.emit(
            1,
            TraceEvent::DeadlineMissed {
                job_id: 1,
                task_id: 2,
            },
        );
        obs.metrics().counter("x").inc();
        assert_eq!(sink.len(), 1);
        assert_eq!(obs2.metrics().snapshot().counter("x"), Some(1));
    }
}
