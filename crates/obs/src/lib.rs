//! # rto-obs — structured tracing + metrics for the rto stack
//!
//! Zero-dependency (std + the workspace's serde/serde_json) observability
//! substrate shared by the simulator, the server models, and the
//! offloading decision manager:
//!
//! * **Trace layer** — a [`TraceEvent`] taxonomy covering every
//!   observable runtime transition (releases, dispatches, preemptions,
//!   offload round-trips, compensation timers, deadline outcomes, ODM
//!   decisions), recorded through a [`TraceSink`]. Ships four sinks:
//!   [`NullSink`] (default, allocation-free), [`MemorySink`] (tests),
//!   [`JsonlSink`] (one JSON object per line), and [`ChromeTraceSink`]
//!   (Chrome/Perfetto trace-event JSON).
//! * **Metrics layer** — hand-rolled [`Counter`], [`Gauge`], and
//!   log-linear [`Histogram`] handles in a [`MetricsRegistry`], exported
//!   as a serializable [`MetricsSnapshot`], Prometheus text, or JSON.
//! * **[`Obs`]** — the bundle the instrumented crates actually thread
//!   around: one shared sink plus one shared registry.
//!
//! ## Design notes
//!
//! * Events are plain `Copy` data and serialize through hand-written
//!   JSON, so the disabled path ([`NullSink`]) performs no heap
//!   allocation per event — a counting-allocator test enforces this.
//! * Timestamps are plain `u64` nanoseconds. The simulator stamps
//!   simulated time; offline emitters (the ODM) stamp zero.
//! * `rto-obs` sits at the bottom of the crate graph (no rto
//!   dependencies), so every other crate can depend on it without
//!   cycles.
//!
//! ## Example
//!
//! ```
//! use rto_obs::{MemorySink, Obs, TraceEvent};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let obs = Obs::with_sink(sink.clone());
//! obs.emit(5, TraceEvent::DeadlineMet { job_id: 0, task_id: 3 });
//! obs.metrics().counter("deadlines_met").inc();
//!
//! assert_eq!(sink.len(), 1);
//! assert_eq!(obs.metrics().snapshot().counter("deadlines_met"), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod metrics;
pub mod sink;

pub use clock::Stopwatch;
pub use event::{Phase, TraceEvent};
pub use metrics::{
    Counter, CounterSample, Gauge, GaugeSample, Histogram, HistogramSample, MetricsRegistry,
    MetricsSnapshot,
};
pub use sink::{ChromeTraceSink, JsonlSink, MemorySink, NullSink, TraceSink};

use std::sync::Arc;

/// The observability context instrumented code threads around: one
/// shared trace sink plus one shared metrics registry.
///
/// Cloning shares both. The default context is *disabled*: a
/// [`NullSink`] plus a fresh registry, costing nothing per event.
#[derive(Clone)]
pub struct Obs {
    sink: Arc<dyn TraceSink>,
    metrics: MetricsRegistry,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.sink.enabled())
            .finish_non_exhaustive()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::disabled()
    }
}

impl Obs {
    /// A context that records nothing (the default).
    pub fn disabled() -> Self {
        Obs {
            sink: Arc::new(NullSink),
            metrics: MetricsRegistry::new(),
        }
    }

    /// A context tracing into `sink` with a fresh registry.
    pub fn with_sink(sink: Arc<dyn TraceSink>) -> Self {
        Obs {
            sink,
            metrics: MetricsRegistry::new(),
        }
    }

    /// A context with both parts supplied.
    pub fn new(sink: Arc<dyn TraceSink>, metrics: MetricsRegistry) -> Self {
        Obs { sink, metrics }
    }

    /// The trace sink.
    pub fn sink(&self) -> &Arc<dyn TraceSink> {
        &self.sink
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Whether the sink wants events.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Records `event` at `ts_ns` if tracing is enabled.
    #[inline]
    pub fn emit(&self, ts_ns: u64, event: TraceEvent) {
        if self.sink.enabled() {
            self.sink.record(ts_ns, &event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_is_disabled() {
        let obs = Obs::default();
        assert!(!obs.tracing_enabled());
        obs.emit(
            0,
            TraceEvent::DeadlineMet {
                job_id: 0,
                task_id: 0,
            },
        );
        assert!(obs.metrics().snapshot().is_empty());
    }

    #[test]
    fn clones_share_sink_and_registry() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::with_sink(sink.clone());
        let obs2 = obs.clone();
        obs2.emit(
            1,
            TraceEvent::DeadlineMissed {
                job_id: 1,
                task_id: 2,
            },
        );
        obs.metrics().counter("x").inc();
        assert_eq!(sink.len(), 1);
        assert_eq!(obs2.metrics().snapshot().counter("x"), Some(1));
    }
}
