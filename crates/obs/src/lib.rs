//! `rto-obs` — structured tracing + metrics for the rto stack.
//!
//! Placeholder; populated by the observability build-out.

#![forbid(unsafe_code)]
