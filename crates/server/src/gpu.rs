//! The GPU server: a discrete-event model of a multi-board accelerator
//! shared with background load.
//!
//! Requests travel uplink through the [`crate::network::NetworkModel`],
//! queue FIFO for the earliest-free GPU board, occupy it for a sampled
//! service time, and travel back downlink. A Poisson **background load**
//! competes for the same boards — this is the knob behind the case study's
//! busy / not-busy / idle scenarios: background arrivals inflate the queue
//! wait that offloaded requests experience, occasionally far beyond any
//! estimated response time.
//!
//! The model is intentionally *work-conserving and causal*: background
//! arrivals are generated lazily as simulated time advances, so a server
//! instance can be driven by any client-side timeline (the `rto-sim`
//! event loop, a measurement proxy, a bench).

use crate::error::ServerError;
use crate::network::NetworkModel;
use rto_core::time::{Duration, Instant};
use rto_obs::{Counter, Histogram, Obs, SpanContext, TraceEvent};
use rto_stats::dist::{Distribution, DynDistribution, Exponential, LogNormal};
use rto_stats::Rng;

/// One offloaded computation as seen by the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadRequest {
    /// Client-side task id (opaque to the server).
    pub task_id: usize,
    /// Uplink payload size in bytes (input data, e.g. the scaled image).
    pub payload_bytes: u64,
    /// Downlink payload size in bytes (results).
    pub response_bytes: u64,
    /// Relative computational cost: the sampled GPU service time is
    /// multiplied by this factor (1.0 = the nominal kernel).
    pub compute_scale: f64,
    /// Causal span context of the client-side offload attempt, if the
    /// caller traces spans. Travels with the request so server-side
    /// events (network transfers, fleet routing) attach to the same
    /// span tree as the client's release/completion events.
    pub span: Option<SpanContext>,
}

impl OffloadRequest {
    /// Creates a nominal request (64 KiB up, 4 KiB down, scale 1).
    pub fn new(task_id: usize) -> Self {
        OffloadRequest {
            task_id,
            payload_bytes: 64 * 1024,
            response_bytes: 4 * 1024,
            compute_scale: 1.0,
            span: None,
        }
    }

    /// Sets the uplink payload size.
    pub fn with_payload_bytes(mut self, bytes: u64) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// Sets the downlink payload size.
    pub fn with_response_bytes(mut self, bytes: u64) -> Self {
        self.response_bytes = bytes;
        self
    }

    /// Sets the compute-cost scale factor.
    pub fn with_compute_scale(mut self, scale: f64) -> Self {
        self.compute_scale = scale;
        self
    }

    /// Attaches the client-side span context.
    pub fn with_span(mut self, span: SpanContext) -> Self {
        self.span = Some(span);
        self
    }
}

/// The result of submitting a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The response will arrive at the client at this instant.
    Response {
        /// Client-side arrival instant of the response.
        arrives_at: Instant,
    },
    /// The request or response was lost in the network; the client will
    /// never hear back.
    Lost,
}

impl SubmitOutcome {
    /// The response arrival instant, if any.
    pub fn arrival(&self) -> Option<Instant> {
        match self {
            SubmitOutcome::Response { arrives_at } => Some(*arrives_at),
            SubmitOutcome::Lost => None,
        }
    }
}

/// Anything that can serve offloaded requests.
///
/// The trait is object-safe so the simulator can swap server
/// implementations (real model, perfect stub, black hole) at run time.
pub trait OffloadServer {
    /// Submits `request` at client-side instant `now`; returns when (if
    /// ever) the response arrives back at the client.
    fn submit(&mut self, request: &OffloadRequest, now: Instant) -> SubmitOutcome;
}

/// The full GPU-server model.
#[derive(Debug)]
pub struct GpuServer {
    network: NetworkModel,
    /// Busy-until instant per GPU board.
    boards: Vec<Instant>,
    service: DynDistribution,
    background_rate_per_sec: f64,
    background_service: DynDistribution,
    next_background: Instant,
    rng: Rng,
    /// When attached (see [`GpuServer::with_obs`]), every uplink and
    /// downlink transfer is metered and traced; `None` keeps the
    /// unobserved hot path allocation-free.
    obs: Option<Obs>,
}

impl GpuServer {
    /// Creates a server.
    ///
    /// * `num_boards` — number of GPU boards (the paper's server has 2);
    /// * `service_mean_ms` / `service_cv` — lognormal GPU service time of
    ///   an offloaded kernel at `compute_scale` 1;
    /// * `background_rate_per_sec` — Poisson arrival rate of competing
    ///   background jobs (0 = idle server);
    /// * `background_service_mean_ms` — mean service time of background
    ///   jobs (exponential);
    /// * `network` — the client↔server network model;
    /// * `seed` — RNG seed.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError`] on zero boards or non-positive service
    /// parameters.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        num_boards: usize,
        service_mean_ms: f64,
        service_cv: f64,
        background_rate_per_sec: f64,
        background_service_mean_ms: f64,
        network: NetworkModel,
        seed: u64,
    ) -> Result<Self, ServerError> {
        if num_boards == 0 {
            return Err(ServerError::new("server needs at least one GPU board"));
        }
        if background_rate_per_sec < 0.0 || !background_rate_per_sec.is_finite() {
            return Err(ServerError::new(format!(
                "background rate {background_rate_per_sec}/s must be non-negative"
            )));
        }
        let service: DynDistribution = Box::new(
            LogNormal::from_mean_cv(service_mean_ms, service_cv)
                .map_err(|e| ServerError::new(e.to_string()))?,
        );
        let background_service: DynDistribution = if background_rate_per_sec > 0.0 {
            Box::new(
                Exponential::from_mean(background_service_mean_ms)
                    .map_err(|e| ServerError::new(e.to_string()))?,
            )
        } else {
            // Unused placeholder (the background process is disabled);
            // fall back to the request-service distribution rather than
            // panic if the constant were ever rejected (lint L3).
            Exponential::from_mean(1.0)
                .map(|d| Box::new(d) as DynDistribution)
                .map_err(|e| ServerError::new(e.to_string()))?
        };
        let mut rng = Rng::seed_from(seed);
        let next_background = if background_rate_per_sec > 0.0 {
            let gap_ms = Exponential::new(background_rate_per_sec / 1e3)
                .map_err(|e| ServerError::new(e.to_string()))?
                .sample(&mut rng);
            Instant::ZERO + Duration::from_ms_f64_clamped(gap_ms)
        } else {
            Instant::MAX
        };
        Ok(GpuServer {
            network,
            boards: vec![Instant::ZERO; num_boards],
            service,
            background_rate_per_sec,
            background_service,
            next_background,
            rng,
            obs: None,
        })
    }

    /// Attaches an observability bundle: uplink/downlink transfers are
    /// recorded through [`NetworkModel::sample_transfer_traced`]
    /// (`net_messages_total`, `net_messages_lost_total`,
    /// `net_transfer_ns`, plus `net_transfer` trace records carrying the
    /// request's span). The RNG stream is identical to the unobserved
    /// server, so attaching observation never perturbs a seeded run.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Builds the case-study server for a contention scenario, with the
    /// default WLAN network. See [`crate::scenario::Scenario`].
    ///
    /// # Errors
    ///
    /// Returns [`ServerError`] if preset assembly fails (it cannot with
    /// the shipped presets).
    pub fn from_scenario(
        scenario: crate::scenario::Scenario,
        seed: u64,
    ) -> Result<Self, ServerError> {
        scenario.build_server(seed)
    }

    /// Advances the lazy background-arrival process to `now`, occupying
    /// boards as jobs arrive.
    fn generate_background(&mut self, now: Instant) {
        while self.next_background <= now {
            let t = self.next_background;
            // Background job takes the earliest-free board.
            let board = Self::earliest_board(&self.boards);
            let start = self.boards[board].max(t);
            let service_ms = self.background_service.sample(&mut self.rng);
            self.boards[board] = start + Duration::from_ms_f64_clamped(service_ms);
            // Next arrival. The rate was validated positive at
            // construction; a clamped zero gap would busy-loop, so fall
            // back to disabling further background arrivals on the
            // (unreachable) error path instead of panicking (lint L3).
            let Ok(gap) = Exponential::new(self.background_rate_per_sec / 1e3) else {
                self.next_background = Instant::MAX;
                return;
            };
            let gap_ms = gap.sample(&mut self.rng);
            self.next_background = t + Duration::from_ms_f64_clamped(gap_ms);
        }
    }

    fn earliest_board(boards: &[Instant]) -> usize {
        boards
            .iter()
            .enumerate()
            .min_by_key(|(_, &busy)| busy)
            .map(|(i, _)| i)
            // `num_boards` is validated ≥ 1 at construction; the
            // fallback keeps this total (lint L3).
            .unwrap_or(0)
    }

    /// Current busy-until instants, for inspection in tests.
    pub fn board_states(&self) -> &[Instant] {
        &self.boards
    }
}

impl GpuServer {
    /// One network transfer, metered/traced when observation is on.
    /// Both arms draw the identical RNG stream.
    fn transfer(&mut self, bytes: u64, at: Instant, span: Option<SpanContext>) -> Option<Duration> {
        match &self.obs {
            Some(obs) => {
                self.network
                    .sample_transfer_traced(bytes, &mut self.rng, obs, at.as_ns(), span)
            }
            None => self.network.sample_transfer(bytes, &mut self.rng),
        }
    }
}

impl OffloadServer for GpuServer {
    fn submit(&mut self, request: &OffloadRequest, now: Instant) -> SubmitOutcome {
        // Uplink.
        let uplink = match self.transfer(request.payload_bytes, now, request.span) {
            Some(d) => d,
            None => return SubmitOutcome::Lost,
        };
        let at_server = now + uplink;
        if self.background_rate_per_sec > 0.0 {
            self.generate_background(at_server);
        }
        // Dispatch to the earliest-free board.
        let board = Self::earliest_board(&self.boards);
        let start = self.boards[board].max(at_server);
        let service_ms = self.service.sample(&mut self.rng) * request.compute_scale;
        let done = start + Duration::from_ms_f64_clamped(service_ms);
        self.boards[board] = done;
        // Downlink.
        match self.transfer(request.response_bytes, done, request.span) {
            Some(d) => SubmitOutcome::Response {
                arrives_at: done + d,
            },
            None => SubmitOutcome::Lost,
        }
    }
}

/// A server that always answers after a fixed delay — the timing
/// *reliable* baseline, for tests and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfectServer {
    /// The fixed round-trip response time.
    pub response_time: Duration,
}

impl OffloadServer for PerfectServer {
    fn submit(&mut self, _request: &OffloadRequest, now: Instant) -> SubmitOutcome {
        SubmitOutcome::Response {
            arrives_at: now + self.response_time,
        }
    }
}

/// A server that never answers — total outage, for failure-injection
/// tests: the client must meet every deadline purely through
/// compensation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlackHoleServer;

impl OffloadServer for BlackHoleServer {
    fn submit(&mut self, _request: &OffloadRequest, _now: Instant) -> SubmitOutcome {
        SubmitOutcome::Lost
    }
}

/// A reservation-backed server: wraps any server and **guarantees** a
/// response within `bound` (late or lost inner responses are delivered at
/// exactly the bound).
///
/// This models the resource-reservation approach of Toma & Chen (ECRTS
/// 2013), which the paper contrasts with: when such a pessimistic
/// worst-case response bound exists and the promised `R_i` is set at or
/// beyond it, the completion phase only ever runs the post-processing
/// `C_{i,3}` (see `rto_core::odm::OdmTask::with_server_bound`).
#[derive(Debug)]
pub struct BoundedServer<S> {
    inner: S,
    bound: Duration,
}

impl<S: OffloadServer> BoundedServer<S> {
    /// Wraps `inner` with a hard response bound.
    pub fn new(inner: S, bound: Duration) -> Self {
        BoundedServer { inner, bound }
    }

    /// The guaranteed bound.
    pub fn bound(&self) -> Duration {
        self.bound
    }
}

impl<S: OffloadServer> OffloadServer for BoundedServer<S> {
    fn submit(&mut self, request: &OffloadRequest, now: Instant) -> SubmitOutcome {
        let cap = now + self.bound;
        match self.inner.submit(request, now) {
            SubmitOutcome::Response { arrives_at } if arrives_at <= cap => {
                SubmitOutcome::Response { arrives_at }
            }
            // Late or lost: the reservation delivers at the bound.
            _ => SubmitOutcome::Response { arrives_at: cap },
        }
    }
}

/// An [`OffloadServer`] decorator that traces and meters every
/// submission.
///
/// The wrapper is transparent for outcomes: it delegates to the inner
/// server and passes the [`SubmitOutcome`] straight through. On the way
/// it emits [`TraceEvent::OffloadRequestSent`] /
/// [`TraceEvent::OffloadRequestLost`] / [`TraceEvent::ServerResponseArrived`]
/// (timestamped with the client-side `now` / arrival instants) and
/// records three metrics in the [`Obs`] registry:
///
/// * `server_submits_total` — submissions seen,
/// * `server_lost_total` — submissions that will never answer,
/// * `server_response_ns` — round-trip histogram of answered requests.
///
/// The server layer does not know simulator job ids, so the wrapper
/// stamps events with its own monotonically increasing submission
/// counter as `job_id`. When the *simulator* is also instrumented (via
/// `Simulation::with_obs`), prefer instrumenting only one of the two
/// layers, or the send/lost events will appear twice with different
/// ids.
pub struct ObservedServer<S> {
    inner: S,
    obs: Obs,
    seq: usize,
    submits: Counter,
    lost: Counter,
    response_ns: Histogram,
}

impl<S> std::fmt::Debug for ObservedServer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObservedServer")
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl<S: OffloadServer> ObservedServer<S> {
    /// Wraps `inner`, registering its metrics in `obs`.
    pub fn new(inner: S, obs: Obs) -> Self {
        ObservedServer {
            inner,
            seq: 0,
            submits: obs.metrics().counter("server_submits_total"),
            lost: obs.metrics().counter("server_lost_total"),
            response_ns: obs.metrics().histogram("server_response_ns"),
            obs,
        }
    }

    /// Unwraps the inner server.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The inner server.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the inner server.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }
}

impl<S: OffloadServer> OffloadServer for ObservedServer<S> {
    fn submit(&mut self, request: &OffloadRequest, now: Instant) -> SubmitOutcome {
        let job_id = self.seq;
        self.seq += 1;
        self.submits.inc();
        self.obs.emit_with(
            now.as_ns(),
            request.span,
            TraceEvent::OffloadRequestSent {
                job_id,
                task_id: request.task_id,
                payload_bytes: request.payload_bytes,
            },
        );
        let outcome = self.inner.submit(request, now);
        match outcome {
            SubmitOutcome::Response { arrives_at } => {
                self.response_ns.record(arrives_at.since(now).as_ns());
                self.obs.emit_with(
                    arrives_at.as_ns(),
                    request.span,
                    TraceEvent::ServerResponseArrived {
                        job_id,
                        task_id: request.task_id,
                        late: false,
                    },
                );
            }
            SubmitOutcome::Lost => {
                self.lost.inc();
                self.obs.emit_with(
                    now.as_ns(),
                    request.span,
                    TraceEvent::OffloadRequestLost {
                        job_id,
                        task_id: request.task_id,
                    },
                );
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle_server(seed: u64) -> GpuServer {
        GpuServer::new(2, 7.0, 0.2, 0.0, 0.0, NetworkModel::ideal(), seed).unwrap()
    }

    #[test]
    fn validation() {
        assert!(GpuServer::new(0, 7.0, 0.2, 0.0, 0.0, NetworkModel::ideal(), 1).is_err());
        assert!(GpuServer::new(2, -1.0, 0.2, 0.0, 0.0, NetworkModel::ideal(), 1).is_err());
        assert!(GpuServer::new(2, 7.0, 0.2, -1.0, 1.0, NetworkModel::ideal(), 1).is_err());
    }

    #[test]
    fn idle_server_responds_near_service_time() {
        let mut s = idle_server(7);
        let req = OffloadRequest::new(0);
        let mut total = 0.0;
        let n = 200;
        for k in 0..n {
            let now = Instant::from_ns(k as u64 * 100_000_000); // 100ms apart
            match s.submit(&req, now) {
                SubmitOutcome::Response { arrives_at } => {
                    total += arrives_at.since(now).as_ms_f64();
                }
                SubmitOutcome::Lost => panic!("ideal network cannot lose"),
            }
        }
        let mean = total / n as f64;
        assert!((mean - 7.0).abs() < 1.0, "mean response {mean} ms");
    }

    #[test]
    fn responses_are_causal_and_deterministic() {
        let req = OffloadRequest::new(0);
        let mut a = idle_server(9);
        let mut b = idle_server(9);
        for k in 0..50 {
            let now = Instant::from_ns(k * 10_000_000);
            let ra = a.submit(&req, now);
            let rb = b.submit(&req, now);
            assert_eq!(ra, rb, "same seed must give same outcome");
            if let Some(t) = ra.arrival() {
                assert!(t > now, "response cannot precede submission");
            }
        }
    }

    #[test]
    fn background_load_inflates_response_times() {
        let req = OffloadRequest::new(0);
        // Background: 300 jobs/s of mean 10 ms on 2 boards = heavily loaded.
        let mut busy = GpuServer::new(2, 7.0, 0.2, 300.0, 10.0, NetworkModel::ideal(), 11).unwrap();
        let mut idle = idle_server(11);
        let mut busy_total = 0.0;
        let mut idle_total = 0.0;
        let n = 100;
        for k in 0..n {
            let now = Instant::from_ns(k as u64 * 50_000_000);
            busy_total += busy
                .submit(&req, now)
                .arrival()
                .expect("ideal network")
                .since(now)
                .as_ms_f64();
            idle_total += idle
                .submit(&req, now)
                .arrival()
                .expect("ideal network")
                .since(now)
                .as_ms_f64();
        }
        assert!(
            busy_total / n as f64 > 2.0 * idle_total / n as f64,
            "busy {busy_total} vs idle {idle_total}"
        );
    }

    #[test]
    fn compute_scale_scales_service() {
        let req_small = OffloadRequest::new(0).with_compute_scale(1.0);
        let req_big = OffloadRequest::new(0).with_compute_scale(10.0);
        let mut s1 = idle_server(13);
        let mut s2 = idle_server(13);
        let mut small = 0.0;
        let mut big = 0.0;
        for k in 0..100 {
            let now = Instant::from_ns(k * 1_000_000_000);
            small += s1
                .submit(&req_small, now)
                .arrival()
                .unwrap()
                .since(now)
                .as_ms_f64();
            big += s2
                .submit(&req_big, now)
                .arrival()
                .unwrap()
                .since(now)
                .as_ms_f64();
        }
        assert!((big / small - 10.0).abs() < 0.5, "ratio {}", big / small);
    }

    #[test]
    fn lossy_network_loses_requests() {
        let net = NetworkModel::new(Duration::ZERO, 1e9, 0.0, 0.0, 0.5).unwrap();
        let mut s = GpuServer::new(1, 1.0, 0.1, 0.0, 0.0, net, 17).unwrap();
        let req = OffloadRequest::new(0);
        let lost = (0..1000)
            .filter(|&k| {
                matches!(
                    s.submit(&req, Instant::from_ns(k * 1_000_000)),
                    SubmitOutcome::Lost
                )
            })
            .count();
        // Loss on uplink or downlink: P = 1 - 0.5*0.5 = 0.75.
        assert!((lost as f64 / 1000.0 - 0.75).abs() < 0.06, "lost {lost}");
    }

    #[test]
    fn boards_fill_in_parallel() {
        let mut s = idle_server(19);
        let req = OffloadRequest::new(0);
        // Two immediate submissions occupy two different boards.
        s.submit(&req, Instant::ZERO);
        s.submit(&req, Instant::ZERO);
        let states = s.board_states();
        assert!(states.iter().all(|&b| b > Instant::ZERO));
    }

    #[test]
    fn perfect_server_is_exact() {
        let mut s = PerfectServer {
            response_time: Duration::from_ms(5),
        };
        let out = s.submit(&OffloadRequest::new(0), Instant::from_ns(100));
        assert_eq!(
            out.arrival(),
            Some(Instant::from_ns(100) + Duration::from_ms(5))
        );
    }

    #[test]
    fn black_hole_never_answers() {
        let mut s = BlackHoleServer;
        for k in 0..10 {
            assert_eq!(
                s.submit(&OffloadRequest::new(0), Instant::from_ns(k)),
                SubmitOutcome::Lost
            );
        }
    }

    #[test]
    fn bounded_server_clamps_and_recovers() {
        // Slow inner server: always 50 ms.
        let inner = PerfectServer {
            response_time: Duration::from_ms(50),
        };
        let mut s = BoundedServer::new(inner, Duration::from_ms(20));
        assert_eq!(s.bound(), Duration::from_ms(20));
        let out = s.submit(&OffloadRequest::new(0), Instant::from_ns(0));
        assert_eq!(out.arrival(), Some(Instant::ZERO + Duration::from_ms(20)));
        // Lost inner responses are also recovered at the bound.
        let mut dead = BoundedServer::new(BlackHoleServer, Duration::from_ms(30));
        let out = dead.submit(&OffloadRequest::new(0), Instant::from_ns(7));
        assert_eq!(
            out.arrival(),
            Some(Instant::from_ns(7) + Duration::from_ms(30))
        );
        // Fast inner responses pass through untouched.
        let fast = PerfectServer {
            response_time: Duration::from_ms(5),
        };
        let mut s = BoundedServer::new(fast, Duration::from_ms(20));
        let out = s.submit(&OffloadRequest::new(0), Instant::ZERO);
        assert_eq!(out.arrival(), Some(Instant::ZERO + Duration::from_ms(5)));
    }

    #[test]
    fn observed_server_is_transparent_and_meters() {
        use rto_obs::MemorySink;
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let obs = Obs::with_sink(sink.clone());
        let mut plain = idle_server(23);
        let mut observed = ObservedServer::new(idle_server(23), obs.clone());
        for k in 0..10u64 {
            let now = Instant::from_ns(k * 100_000_000);
            let req = OffloadRequest::new(0);
            assert_eq!(
                observed.submit(&req, now),
                plain.submit(&req, now),
                "wrapper must not change outcomes"
            );
        }
        let snap = obs.metrics().snapshot();
        assert_eq!(snap.counter("server_submits_total"), Some(10));
        assert_eq!(snap.counter("server_lost_total"), Some(0));
        assert_eq!(snap.histogram("server_response_ns").unwrap().count, 10);
        // One sent + one arrived event per submission.
        assert_eq!(sink.len(), 20);

        // Lost submissions are counted and traced.
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::with_sink(sink.clone());
        let mut dead = ObservedServer::new(BlackHoleServer, obs.clone());
        assert_eq!(
            dead.submit(&OffloadRequest::new(1), Instant::ZERO),
            SubmitOutcome::Lost
        );
        assert_eq!(
            obs.metrics().snapshot().counter("server_lost_total"),
            Some(1)
        );
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[1].1,
            TraceEvent::OffloadRequestLost {
                job_id: 0,
                task_id: 1
            }
        ));
        assert_eq!(dead.inner(), &BlackHoleServer);
        dead.inner_mut();
        let _ = dead.into_inner();
    }

    #[test]
    fn request_builder() {
        let r = OffloadRequest::new(3)
            .with_payload_bytes(100)
            .with_response_bytes(10)
            .with_compute_scale(2.5);
        assert_eq!(r.task_id, 3);
        assert_eq!(r.payload_bytes, 100);
        assert_eq!(r.response_bytes, 10);
        assert_eq!(r.compute_scale, 2.5);
    }
}
