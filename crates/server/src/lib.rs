//! # rto-server — the timing-unreliable component, simulated
//!
//! The paper's case study offloads image-processing kernels to a GPU
//! server (two Tesla M2050 boards behind an rCUDA-style proxy) over a
//! wireless LAN. Neither the server nor the network offers a usable
//! worst-case bound — that is precisely why the compensation mechanism of
//! `rto-core` exists. This crate provides a faithful *stochastic* stand-in
//! for that infrastructure:
//!
//! * [`network`] — an uplink/downlink latency model: propagation floor +
//!   size/bandwidth + lognormal jitter + loss (a lost message simply never
//!   produces a response; the compensation timer covers it);
//! * [`gpu`] — a discrete-event GPU server: `g` boards, FIFO dispatch to
//!   the earliest-free board, Poisson background load competing for the
//!   boards (the "server is busy processing other applications" of
//!   §6.1.3);
//! * [`scenario`] — the three contention presets of the case study
//!   (busy / not busy / idle) plus fully custom configurations;
//! * [`proxy`] — an rCUDA-like measurement proxy that collects
//!   response-time samples for the Benefit & Response Time Estimator.
//!
//! Everything is deterministic given a seed. The server deliberately has
//! **no** worst-case response-time knob: code under test must survive
//! arbitrarily late (or lost) responses.
//!
//! # Example
//!
//! ```
//! use rto_server::prelude::*;
//! use rto_core::time::Instant;
//!
//! let mut server = GpuServer::from_scenario(Scenario::Idle, 42)?;
//! let req = OffloadRequest::new(0).with_payload_bytes(60_000);
//! match server.submit(&req, Instant::ZERO) {
//!     SubmitOutcome::Response { arrives_at } => assert!(arrives_at > Instant::ZERO),
//!     SubmitOutcome::Lost => {} // possible: the network is unreliable
//! }
//! # Ok::<(), rto_server::ServerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fleet;
pub mod gpu;
pub mod network;
pub mod proxy;
pub mod scenario;

pub use error::ServerError;
pub use fleet::{Routing, ServerFleet};
pub use gpu::{GpuServer, ObservedServer, OffloadRequest, OffloadServer, SubmitOutcome};
pub use network::NetworkModel;
pub use proxy::ServerProxy;
pub use scenario::Scenario;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::fleet::{Routing, ServerFleet};
    pub use crate::gpu::{GpuServer, ObservedServer, OffloadRequest, OffloadServer, SubmitOutcome};
    pub use crate::network::NetworkModel;
    pub use crate::proxy::ServerProxy;
    pub use crate::scenario::Scenario;
    pub use crate::ServerError;
}
