//! The rCUDA-like measurement proxy (paper §6.1.1–6.1.2).
//!
//! The paper's proxy application collects computations from the client and
//! dispatches them to the GPUs; the client, in turn, measures response
//! times through it to build `G_i(r)` "by using coarse-grained statistic
//! estimation … under the considerations of the network transfer time,
//! receiving time, processing time on the server host, and the response
//! time on the GPU" (§6.1.2). [`ServerProxy`] reproduces that measurement
//! campaign: it fires probe requests at a fixed cadence and reports the
//! observed response-time distribution, *including* probes that never
//! came back (lost messages), which cap the achievable success
//! probability.

use crate::gpu::{OffloadRequest, OffloadServer};
use rto_core::estimator::ResponseTimeEstimator;
use rto_core::time::{Duration, Instant};
use rto_obs::Obs;

/// The outcome of a measurement campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementReport {
    /// Response times of probes that completed.
    pub samples: Vec<Duration>,
    /// Number of probes that never produced a response.
    pub lost: usize,
}

impl MeasurementReport {
    /// Total number of probes fired.
    pub fn total(&self) -> usize {
        self.samples.len() + self.lost
    }

    /// The measured probability of receiving a result within `r`,
    /// counting lost probes as never-arriving.
    pub fn success_probability_within(&self, r: Duration) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        let ok = self.samples.iter().filter(|&&s| s <= r).count();
        ok as f64 / self.total() as f64
    }

    /// Builds a [`ResponseTimeEstimator`] over the *completed* probes.
    ///
    /// # Errors
    ///
    /// Returns [`rto_core::CoreError::InvalidEstimate`] when no probe
    /// completed.
    pub fn to_estimator(&self) -> Result<ResponseTimeEstimator, rto_core::CoreError> {
        ResponseTimeEstimator::from_samples(&self.samples)
    }
}

/// A measurement proxy over any [`OffloadServer`].
#[derive(Debug)]
pub struct ServerProxy<S> {
    server: S,
    obs: Obs,
}

impl<S: OffloadServer> ServerProxy<S> {
    /// Wraps a server.
    pub fn new(server: S) -> Self {
        ServerProxy {
            server,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability bundle. Every measurement campaign then
    /// records its probes into the registry: `proxy_probes_total`,
    /// `proxy_probes_lost_total`, and a `proxy_probe_response_ns`
    /// histogram of completed probes.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Unwraps the server.
    pub fn into_inner(self) -> S {
        self.server
    }

    /// Access to the wrapped server (e.g. to keep using it after
    /// measuring).
    pub fn server_mut(&mut self) -> &mut S {
        &mut self.server
    }

    /// Fires `count` probes shaped like `request`, starting at `start`
    /// and spaced `spacing` apart, and reports the response-time
    /// distribution.
    ///
    /// The cadence matters: probes spaced closer than the service time
    /// measure self-induced queueing (as real measurement campaigns do).
    pub fn measure(
        &mut self,
        request: &OffloadRequest,
        count: usize,
        start: Instant,
        spacing: Duration,
    ) -> MeasurementReport {
        let mut samples = Vec::with_capacity(count);
        let mut lost = 0usize;
        let probes = self.obs.metrics().counter("proxy_probes_total");
        let losses = self.obs.metrics().counter("proxy_probes_lost_total");
        let response_ns = self.obs.metrics().histogram("proxy_probe_response_ns");
        for k in 0..count {
            let now = start + spacing * k as u64;
            probes.inc();
            match self.server.submit(request, now).arrival() {
                Some(arrives_at) => {
                    let rt = arrives_at.since(now);
                    response_ns.record(rt.as_ns());
                    samples.push(rt);
                }
                None => {
                    losses.inc();
                    lost += 1;
                }
            }
        }
        MeasurementReport { samples, lost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{BlackHoleServer, PerfectServer};
    use crate::network::NetworkModel;
    use crate::GpuServer;

    #[test]
    fn measures_perfect_server_exactly() {
        let mut proxy = ServerProxy::new(PerfectServer {
            response_time: Duration::from_ms(5),
        });
        let report = proxy.measure(
            &OffloadRequest::new(0),
            10,
            Instant::ZERO,
            Duration::from_ms(100),
        );
        assert_eq!(report.total(), 10);
        assert_eq!(report.lost, 0);
        assert!(report.samples.iter().all(|&s| s == Duration::from_ms(5)));
        assert_eq!(report.success_probability_within(Duration::from_ms(5)), 1.0);
        assert_eq!(report.success_probability_within(Duration::from_ms(4)), 0.0);
    }

    #[test]
    fn black_hole_yields_all_lost() {
        let mut proxy = ServerProxy::new(BlackHoleServer);
        let report = proxy.measure(
            &OffloadRequest::new(0),
            5,
            Instant::ZERO,
            Duration::from_ms(10),
        );
        assert_eq!(report.lost, 5);
        assert_eq!(
            report.success_probability_within(Duration::from_secs(10)),
            0.0
        );
        assert!(report.to_estimator().is_err());
    }

    #[test]
    fn estimator_round_trip() {
        let server = GpuServer::new(2, 10.0, 0.3, 0.0, 0.0, NetworkModel::ideal(), 5).unwrap();
        let mut proxy = ServerProxy::new(server);
        let report = proxy.measure(
            &OffloadRequest::new(0),
            200,
            Instant::ZERO,
            Duration::from_ms(100),
        );
        assert_eq!(report.lost, 0);
        let est = report.to_estimator().unwrap();
        let median = est.quantile(0.5);
        assert!(
            median > Duration::from_ms(5) && median < Duration::from_ms(20),
            "median {median}"
        );
    }

    #[test]
    fn lost_probes_cap_success_probability() {
        let report = MeasurementReport {
            samples: vec![Duration::from_ms(10); 6],
            lost: 4,
        };
        assert_eq!(
            report.success_probability_within(Duration::from_secs(1)),
            0.6
        );
    }

    #[test]
    fn empty_report_probability_zero() {
        let report = MeasurementReport {
            samples: vec![],
            lost: 0,
        };
        assert_eq!(report.success_probability_within(Duration::from_ms(1)), 0.0);
    }

    #[test]
    fn observed_proxy_records_probe_metrics() {
        let obs = Obs::default();
        let mut proxy = ServerProxy::new(PerfectServer {
            response_time: Duration::from_ms(5),
        })
        .with_obs(obs.clone());
        proxy.measure(
            &OffloadRequest::new(0),
            8,
            Instant::ZERO,
            Duration::from_ms(100),
        );
        let mut dead = ServerProxy::new(BlackHoleServer).with_obs(obs.clone());
        dead.measure(
            &OffloadRequest::new(0),
            3,
            Instant::ZERO,
            Duration::from_ms(100),
        );
        let snap = obs.metrics().snapshot();
        assert_eq!(snap.counter("proxy_probes_total"), Some(11));
        assert_eq!(snap.counter("proxy_probes_lost_total"), Some(3));
        let h = snap.histogram("proxy_probe_response_ns").unwrap();
        assert_eq!(h.count, 8);
        assert_eq!(h.min, Some(5_000_000));
        assert_eq!(h.max, Some(5_000_000));
    }

    #[test]
    fn accessors() {
        let mut proxy = ServerProxy::new(PerfectServer {
            response_time: Duration::from_ms(1),
        });
        proxy.server_mut().response_time = Duration::from_ms(2);
        let server = proxy.into_inner();
        assert_eq!(server.response_time, Duration::from_ms(2));
    }
}
