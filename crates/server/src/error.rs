//! Error types for `rto-server`.

use std::fmt;

/// Errors raised while configuring the server substrate.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerError {
    what: String,
}

impl ServerError {
    pub(crate) fn new(what: impl Into<String>) -> Self {
        ServerError { what: what.into() }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server configuration error: {}", self.what)
    }
}

impl std::error::Error for ServerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(ServerError::new("bad").to_string().contains("bad"));
    }
}
