//! A fleet of offload servers behind one dispatch point.
//!
//! Real deployments rarely have a single accelerator: a robot may reach
//! several edge servers, a rack hosts many GPU nodes. [`ServerFleet`]
//! implements [`OffloadServer`] over a set of member servers with a
//! pluggable routing policy, so the rest of the stack (simulator, proxy,
//! estimator) is oblivious to the fan-out:
//!
//! * [`Routing::RoundRobin`] — cycle through members;
//! * [`Routing::ByTask`] — pin each task id to one member by plain
//!   `task_id % n` modular pinning (no hashing involved), keeping
//!   per-task response statistics stationary;
//! * [`Routing::FastestObserved`] — send to the member with the best
//!   recent observed response time (explore-then-exploit with a fixed
//!   exploration share; exploration turns rotate over the *non-best*
//!   members, and lost responses fold a configurable penalty into the
//!   member's estimate so fast-but-lossy members do not look best
//!   forever).
//!
//! Routing is *client-side* and uses only information the client really
//! has — observed responses — never the servers' internal state.

use crate::gpu::{OffloadRequest, OffloadServer, SubmitOutcome};
use rto_core::time::Instant;
use rto_obs::{Counter, Obs, TraceEvent};

/// Client-side routing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Cycle through the members in order.
    RoundRobin,
    /// `member = task_id mod fleet size`: per-task pinning.
    ByTask,
    /// Prefer the member with the lowest exponentially-weighted observed
    /// response time; every `explore_every`-th request probes a rotating
    /// other member to keep estimates fresh.
    FastestObserved {
        /// Send every n-th request to a rotating non-best member (≥ 2).
        explore_every: u64,
    },
}

/// A fleet of servers behind one [`OffloadServer`] facade.
pub struct ServerFleet {
    members: Vec<Box<dyn OffloadServer>>,
    routing: Routing,
    next: usize,
    submissions: u64,
    /// EWMA of observed response time per member, in ms (`None` until the
    /// first observation).
    observed_ms: Vec<Option<f64>>,
    /// Response-time equivalent charged into a member's EWMA when a
    /// submission to it is lost (ms).
    lost_penalty_ms: f64,
    obs: Obs,
    /// `fleet_routed_total_<member>` counters, one per member.
    routed: Vec<Counter>,
}

impl std::fmt::Debug for ServerFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerFleet")
            .field("members", &self.members.len())
            .field("routing", &self.routing)
            .field("observed_ms", &self.observed_ms)
            .finish_non_exhaustive()
    }
}

/// EWMA smoothing factor for observed response times.
const ALPHA: f64 = 0.3;

/// Default lost-response penalty (ms): far above any realistic
/// response time in this stack (service means are tens of ms, promised
/// response bounds are hundreds), so a member that keeps losing
/// submissions ranks last no matter how fast its successful answers
/// are.
const DEFAULT_LOST_PENALTY_MS: f64 = 1_000.0;

impl ServerFleet {
    /// Creates a fleet.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty, or `FastestObserved.explore_every`
    /// is below 2.
    pub fn new(members: Vec<Box<dyn OffloadServer>>, routing: Routing) -> Self {
        assert!(!members.is_empty(), "fleet needs at least one member");
        if let Routing::FastestObserved { explore_every } = routing {
            assert!(explore_every >= 2, "explore_every must be at least 2");
        }
        let n = members.len();
        ServerFleet {
            members,
            routing,
            next: 0,
            submissions: 0,
            observed_ms: vec![None; n],
            lost_penalty_ms: DEFAULT_LOST_PENALTY_MS,
            obs: Obs::disabled(),
            routed: Vec::new(),
        }
    }

    /// Overrides the response-time equivalent (ms) folded into a
    /// member's EWMA when a submission to it is **lost**. Without this
    /// charge a fast-but-lossy member would keep the estimate of its
    /// rare successes and look best forever; with it, losses drag the
    /// estimate toward `penalty_ms` and [`Routing::FastestObserved`]
    /// routes away. Choose a value above the worst acceptable response
    /// time; defaults to 1000 ms.
    #[must_use]
    pub fn with_lost_penalty_ms(mut self, penalty_ms: f64) -> Self {
        self.lost_penalty_ms = penalty_ms;
        self
    }

    /// Attaches an observability bundle: every submission emits a
    /// [`TraceEvent::FleetRouted`] event and bumps a per-member
    /// `fleet_routed_total_<member>` counter. Routing decisions are
    /// unaffected.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.routed = (0..self.members.len())
            .map(|m| obs.metrics().counter(&format!("fleet_routed_total_{m}")))
            .collect();
        self.obs = obs;
        self
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the fleet has no members (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The current response-time estimates per member (ms).
    pub fn observed_ms(&self) -> &[Option<f64>] {
        &self.observed_ms
    }

    fn pick(&mut self, request: &OffloadRequest) -> usize {
        let n = self.members.len();
        match self.routing {
            Routing::RoundRobin => {
                let m = self.next;
                self.next = (self.next + 1) % n;
                m
            }
            Routing::ByTask => request.task_id % n,
            Routing::FastestObserved { explore_every } => {
                let best = self
                    .observed_ms
                    .iter()
                    .enumerate()
                    .filter_map(|(i, o)| o.map(|v| (i, v)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(i, _)| i);
                match best {
                    Some(best_idx) if !self.submissions.is_multiple_of(explore_every) || n == 1 => {
                        best_idx
                    }
                    // Exploration turn, or nothing observed yet: rotate.
                    // Skip the current best — we would pick it anyway on
                    // an exploitation turn, so probing it would waste
                    // the entire exploration budget promised to the
                    // *other* members.
                    best => {
                        let mut m = self.next % n;
                        if best == Some(m) && n > 1 {
                            m = (m + 1) % n;
                        }
                        self.next = (m + 1) % n;
                        m
                    }
                }
            }
        }
    }
}

impl OffloadServer for ServerFleet {
    fn submit(&mut self, request: &OffloadRequest, now: Instant) -> SubmitOutcome {
        let member = self.pick(request);
        self.submissions += 1;
        self.obs.emit_with(
            now.as_ns(),
            request.span,
            TraceEvent::FleetRouted {
                task_id: request.task_id,
                member,
            },
        );
        if let Some(counter) = self.routed.get(member) {
            counter.inc();
        }
        let outcome = self.members[member].submit(request, now);
        // Every outcome updates the estimate: a response feeds its
        // round-trip time, a loss feeds the (large) lost penalty —
        // otherwise a fast-but-lossy member would keep the EWMA of its
        // rare successes and look best forever.
        let rt_ms = match outcome {
            SubmitOutcome::Response { arrives_at } => arrives_at.since(now).as_ms_f64(),
            SubmitOutcome::Lost => self.lost_penalty_ms,
        };
        self.observed_ms[member] = Some(match self.observed_ms[member] {
            Some(prev) => prev + ALPHA * (rt_ms - prev),
            None => rt_ms,
        });
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{BlackHoleServer, PerfectServer};
    use rto_core::time::Duration;

    fn fleet(routing: Routing) -> ServerFleet {
        ServerFleet::new(
            vec![
                Box::new(PerfectServer {
                    response_time: Duration::from_ms(10),
                }),
                Box::new(PerfectServer {
                    response_time: Duration::from_ms(50),
                }),
            ],
            routing,
        )
    }

    fn response_ms(fleet: &mut ServerFleet, task: usize, k: u64) -> Option<f64> {
        let now = Instant::from_ns(k * 1_000_000_000);
        fleet
            .submit(&OffloadRequest::new(task), now)
            .arrival()
            .map(|t| t.since(now).as_ms_f64())
    }

    #[test]
    fn round_robin_alternates() {
        let mut f = fleet(Routing::RoundRobin);
        let a = response_ms(&mut f, 0, 0).unwrap();
        let b = response_ms(&mut f, 0, 1).unwrap();
        let c = response_ms(&mut f, 0, 2).unwrap();
        assert_eq!(a, 10.0);
        assert_eq!(b, 50.0);
        assert_eq!(c, 10.0);
    }

    #[test]
    fn by_task_pins_tasks() {
        let mut f = fleet(Routing::ByTask);
        for k in 0..6 {
            assert_eq!(response_ms(&mut f, 0, k).unwrap(), 10.0);
            assert_eq!(response_ms(&mut f, 1, k + 100).unwrap(), 50.0);
            assert_eq!(response_ms(&mut f, 2, k + 200).unwrap(), 10.0);
        }
    }

    #[test]
    fn fastest_observed_converges_to_fast_member() {
        let mut f = fleet(Routing::FastestObserved { explore_every: 5 });
        let mut fast_hits = 0;
        for k in 0..100 {
            if response_ms(&mut f, 0, k).unwrap() == 10.0 {
                fast_hits += 1;
            }
        }
        // Everything except the exploration share should hit the fast
        // member once both are observed.
        assert!(fast_hits > 70, "only {fast_hits}/100 on the fast member");
        let obs = f.observed_ms();
        assert!(obs[0].unwrap() < obs[1].unwrap());
    }

    #[test]
    fn lost_responses_penalize_the_member() {
        let mut f = ServerFleet::new(
            vec![
                Box::new(BlackHoleServer),
                Box::new(PerfectServer {
                    response_time: Duration::from_ms(5),
                }),
            ],
            Routing::FastestObserved { explore_every: 3 },
        );
        let mut answered = 0;
        for k in 0..60 {
            if response_ms(&mut f, 0, k).is_some() {
                answered += 1;
            }
        }
        // Losses charge the penalty into the black hole's estimate, so
        // once the live member answers it is strictly better and only
        // exploration turns are lost.
        assert!(answered > 30, "only {answered}/60 answered");
        let dead = f.observed_ms()[0].expect("losses must leave an estimate");
        let live = f.observed_ms()[1].expect("responses leave an estimate");
        assert!(
            dead > live,
            "lossy member ({dead} ms) must rank behind the live one ({live} ms)"
        );
        assert!(dead > 500.0, "penalty not reflected: {dead} ms");
    }

    /// A server that answers fast but loses every other submission —
    /// the member that used to fool `FastestObserved` forever when
    /// losses were ignored.
    struct FlakyServer {
        response_time: Duration,
        submissions: u64,
    }

    impl OffloadServer for FlakyServer {
        fn submit(&mut self, _request: &OffloadRequest, now: Instant) -> SubmitOutcome {
            self.submissions += 1;
            if self.submissions.is_multiple_of(2) {
                SubmitOutcome::Lost
            } else {
                SubmitOutcome::Response {
                    arrives_at: now + self.response_time,
                }
            }
        }
    }

    #[test]
    fn fast_but_lossy_member_is_routed_away_from() {
        // Member 0: 2 ms when it answers, but 50 % loss. Member 1:
        // honest 20 ms. Ignoring losses, member 0's EWMA would sit at
        // 2 ms and capture all exploitation traffic forever.
        let mut f = ServerFleet::new(
            vec![
                Box::new(FlakyServer {
                    response_time: Duration::from_ms(2),
                    submissions: 0,
                }),
                Box::new(PerfectServer {
                    response_time: Duration::from_ms(20),
                }),
            ],
            Routing::FastestObserved { explore_every: 5 },
        );
        let mut reliable_hits = 0;
        for k in 0..100 {
            if response_ms(&mut f, 0, k) == Some(20.0) {
                reliable_hits += 1;
            }
        }
        // The loss penalty drags the flaky member's estimate far above
        // the reliable member's, so exploitation converges there.
        assert!(
            reliable_hits > 60,
            "only {reliable_hits}/100 reached the reliable member"
        );
        let flaky = f.observed_ms()[0].expect("flaky member was observed");
        let reliable = f.observed_ms()[1].expect("reliable member was observed");
        assert!(
            flaky > reliable,
            "flaky member ({flaky} ms) still looks better than reliable ({reliable} ms)"
        );
    }

    #[test]
    fn exploration_turns_never_probe_the_best_member() {
        use rto_obs::MemorySink;
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let explore_every = 2;
        let mut f = ServerFleet::new(
            vec![
                Box::new(PerfectServer {
                    response_time: Duration::from_ms(10),
                }),
                Box::new(PerfectServer {
                    response_time: Duration::from_ms(50),
                }),
                Box::new(PerfectServer {
                    response_time: Duration::from_ms(90),
                }),
            ],
            Routing::FastestObserved { explore_every },
        )
        .with_obs(Obs::with_sink(sink.clone()));
        for k in 0..40 {
            response_ms(&mut f, 0, k);
        }
        let members: Vec<usize> = sink
            .events()
            .iter()
            .filter_map(|(_, e)| match e {
                TraceEvent::FleetRouted { member, .. } => Some(*member),
                _ => None,
            })
            .collect();
        assert_eq!(members.len(), 40);
        // Submission 0 observes member 0 (10 ms), which stays best for
        // the whole run. Every later exploration turn must probe one of
        // the *other* members; exploitation turns must hit the best.
        let mut probed = std::collections::HashSet::new();
        for (k, &m) in members.iter().enumerate().skip(1) {
            if k % explore_every as usize == 0 {
                assert_ne!(m, 0, "exploration turn {k} wasted on the best member");
                probed.insert(m);
            } else {
                assert_eq!(m, 0, "exploitation turn {k} missed the best member");
            }
        }
        // The rotation reaches every non-best member, not just one.
        assert_eq!(probed.len(), 2, "rotation must cover all non-best members");
    }

    /// Deterministic Fisher–Yates over `0..n`, driven by a 64-bit LCG —
    /// the property test below must not depend on ambient RNG (A6).
    fn shuffled(seed: u64, n: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x2545_F491_4F6C_DD1D);
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        order
    }

    fn shuffled_fleet(order: &[usize]) -> ServerFleet {
        let times_ms = [10, 30, 50, 70];
        let members: Vec<Box<dyn OffloadServer>> = order
            .iter()
            .map(|&i| {
                Box::new(PerfectServer {
                    response_time: Duration::from_ms(times_ms[i]),
                }) as Box<dyn OffloadServer>
            })
            .collect();
        ServerFleet::new(members, Routing::FastestObserved { explore_every: 4 })
    }

    #[test]
    fn fastest_observed_exploitation_is_registration_order_invariant() {
        // Property: once every member has been observed, exploitation
        // turns route to the *identity* of the fastest server no matter
        // in which order the members were registered. Exploration turns
        // rotate by member INDEX, so only exploitation is checked for
        // order invariance; the full response trace is checked for
        // replay determinism instead.
        let explore_every = 4u64;
        let warmup = 16u64;
        for seed in 0..32u64 {
            let order = shuffled(seed, 4);
            let mut f = shuffled_fleet(&order);
            let trace: Vec<Option<f64>> = (0..120).map(|k| response_ms(&mut f, 0, k)).collect();
            for (k, rt) in trace.iter().enumerate() {
                let k = k as u64;
                if k >= warmup && !k.is_multiple_of(explore_every) {
                    assert_eq!(
                        *rt,
                        Some(10.0),
                        "seed {seed} (order {order:?}): exploitation turn {k} \
                         missed the fastest member"
                    );
                }
            }
            // Replay determinism: the same registration order reproduces
            // the same routing decisions, response for response.
            let mut g = shuffled_fleet(&order);
            let replay: Vec<Option<f64>> = (0..120).map(|k| response_ms(&mut g, 0, k)).collect();
            assert_eq!(trace, replay, "seed {seed}: replay diverged");
        }
    }

    #[test]
    fn accessors() {
        let f = fleet(Routing::RoundRobin);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    fn observed_fleet_traces_routing() {
        use rto_obs::MemorySink;
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let obs = Obs::with_sink(sink.clone());
        let mut f = fleet(Routing::RoundRobin).with_obs(obs.clone());
        for k in 0..4 {
            response_ms(&mut f, 7, k);
        }
        let events = sink.events();
        let members: Vec<usize> = events
            .iter()
            .filter_map(|(_, e)| match e {
                TraceEvent::FleetRouted { task_id: 7, member } => Some(*member),
                _ => None,
            })
            .collect();
        assert_eq!(members, vec![0, 1, 0, 1]);
        let snap = obs.metrics().snapshot();
        assert_eq!(snap.counter("fleet_routed_total_0"), Some(2));
        assert_eq!(snap.counter("fleet_routed_total_1"), Some(2));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_fleet_panics() {
        ServerFleet::new(vec![], Routing::RoundRobin);
    }

    #[test]
    #[should_panic(expected = "explore_every")]
    fn bad_explore_panics() {
        ServerFleet::new(
            vec![Box::new(BlackHoleServer)],
            Routing::FastestObserved { explore_every: 1 },
        );
    }
}
