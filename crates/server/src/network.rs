//! The wireless-network latency model.
//!
//! A message of `n` bytes experiences
//!
//! ```text
//! latency = base + n / bandwidth + jitter,   jitter ~ LogNormal
//! ```
//!
//! and is *lost* outright with probability `loss`. A lost offload request
//! or response never reaches its destination — from the client's
//! perspective the server simply never answers, and the compensation
//! timer handles it. This is exactly the failure mode that makes the
//! component "timing unreliable".

use crate::error::ServerError;
use rto_core::time::Duration;
use rto_stats::dist::{Distribution, LogNormal};
use rto_stats::Rng;

/// Uplink/downlink latency and loss model.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    base: Duration,
    bandwidth_bytes_per_sec: f64,
    jitter: Option<LogNormal>,
    loss: f64,
}

impl NetworkModel {
    /// Creates a network model.
    ///
    /// * `base` — propagation/stack floor added to every message;
    /// * `bandwidth_bytes_per_sec` — serialization rate (must be > 0);
    /// * `jitter_mean_ms` / `jitter_cv` — lognormal jitter (mean 0 ⇒ no
    ///   jitter);
    /// * `loss` — per-message loss probability in `[0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError`] on non-positive bandwidth, negative jitter
    /// parameters, or `loss` outside `[0, 1)`.
    pub fn new(
        base: Duration,
        bandwidth_bytes_per_sec: f64,
        jitter_mean_ms: f64,
        jitter_cv: f64,
        loss: f64,
    ) -> Result<Self, ServerError> {
        if bandwidth_bytes_per_sec <= 0.0 || !bandwidth_bytes_per_sec.is_finite() {
            return Err(ServerError::new(format!(
                "bandwidth {bandwidth_bytes_per_sec} B/s must be positive"
            )));
        }
        if !(0.0..1.0).contains(&loss) {
            return Err(ServerError::new(format!("loss {loss} outside [0,1)")));
        }
        if jitter_mean_ms < 0.0 || !jitter_mean_ms.is_finite() {
            return Err(ServerError::new(format!(
                "jitter mean {jitter_mean_ms} ms must be non-negative"
            )));
        }
        let jitter = if jitter_mean_ms <= 0.0 {
            None
        } else {
            Some(
                LogNormal::from_mean_cv(jitter_mean_ms, jitter_cv)
                    .map_err(|e| ServerError::new(e.to_string()))?,
            )
        };
        Ok(NetworkModel {
            base,
            bandwidth_bytes_per_sec,
            jitter,
            loss,
        })
    }

    /// A zero-latency, lossless network (tests, ablations).
    pub fn ideal() -> Self {
        NetworkModel {
            base: Duration::ZERO,
            bandwidth_bytes_per_sec: f64::INFINITY,
            jitter: None,
            loss: 0.0,
        }
    }

    /// A plausible 802.11n-class WLAN: 1 ms floor, ~20 MB/s, 30 % CV
    /// jitter of mean 2 ms, 0.5 % loss.
    pub fn wlan() -> Self {
        NetworkModel::new(Duration::from_ms(1), 20e6, 2.0, 0.3, 0.005).unwrap_or_else(|_| {
            // Unreachable: the constants above are valid by inspection.
            // A jitter-free fallback keeps this constructor total
            // (lint L3).
            NetworkModel {
                base: Duration::from_ms(1),
                bandwidth_bytes_per_sec: 20e6,
                jitter: None,
                loss: 0.0,
            }
        })
    }

    /// Samples the one-way latency for a message of `payload_bytes`, or
    /// `None` if the message is lost.
    pub fn sample_transfer(&self, payload_bytes: u64, rng: &mut Rng) -> Option<Duration> {
        if self.loss > 0.0 && rng.chance(self.loss) {
            return None;
        }
        let serialization_ms = if self.bandwidth_bytes_per_sec.is_finite() {
            payload_bytes as f64 / self.bandwidth_bytes_per_sec * 1e3
        } else {
            0.0
        };
        let jitter_ms = match &self.jitter {
            Some(j) => j.sample(rng),
            None => 0.0,
        };
        // Components are non-negative by validation; the clamp keeps
        // the sampling path total (lint L3).
        let extra = Duration::from_ms_f64_clamped(serialization_ms + jitter_ms);
        Some(self.base + extra)
    }

    /// Like [`NetworkModel::sample_transfer`], but additionally records
    /// the outcome into `obs`'s metric registry:
    ///
    /// * `net_messages_total` — messages attempted,
    /// * `net_messages_lost_total` — messages dropped by the loss model,
    /// * `net_transfer_ns` — one-way latency histogram of delivered
    ///   messages.
    ///
    /// Draws exactly the same RNG stream as the unobserved variant, so
    /// swapping one for the other never perturbs a seeded simulation.
    pub fn sample_transfer_observed(
        &self,
        payload_bytes: u64,
        rng: &mut Rng,
        obs: &rto_obs::Obs,
    ) -> Option<Duration> {
        let sampled = self.sample_transfer(payload_bytes, rng);
        obs.metrics().counter("net_messages_total").inc();
        match sampled {
            Some(d) => obs.metrics().histogram("net_transfer_ns").record(d.as_ns()),
            None => obs.metrics().counter("net_messages_lost_total").inc(),
        }
        sampled
    }

    /// Like [`NetworkModel::sample_transfer_observed`], but additionally
    /// emits a [`rto_obs::TraceEvent::NetTransfer`] record stamped at
    /// `ts_ns`, carrying `span` when the caller traces causal spans —
    /// the record lands inside the offload span of the request whose
    /// payload is in flight.
    ///
    /// Draws exactly the same RNG stream as the unobserved variant.
    pub fn sample_transfer_traced(
        &self,
        payload_bytes: u64,
        rng: &mut Rng,
        obs: &rto_obs::Obs,
        ts_ns: u64,
        span: Option<rto_obs::SpanContext>,
    ) -> Option<Duration> {
        let sampled = self.sample_transfer_observed(payload_bytes, rng, obs);
        let (elapsed_ns, lost) = match sampled {
            Some(d) => (d.as_ns(), false),
            None => (0, true),
        };
        obs.emit_with(
            ts_ns,
            span,
            rto_obs::TraceEvent::NetTransfer {
                payload_bytes,
                elapsed_ns,
                lost,
            },
        );
        sampled
    }

    /// The deterministic part of the latency (floor + serialization) for
    /// a payload, ignoring jitter and loss. Useful for analytical checks.
    pub fn deterministic_latency(&self, payload_bytes: u64) -> Duration {
        let serialization_ms = if self.bandwidth_bytes_per_sec.is_finite() {
            payload_bytes as f64 / self.bandwidth_bytes_per_sec * 1e3
        } else {
            0.0
        };
        self.base + Duration::from_ms_f64_clamped(serialization_ms)
    }

    /// The per-message loss probability.
    pub fn loss(&self) -> f64 {
        self.loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(NetworkModel::new(Duration::ZERO, 0.0, 0.0, 0.0, 0.0).is_err());
        assert!(NetworkModel::new(Duration::ZERO, 1.0, 0.0, 0.0, 1.0).is_err());
        assert!(NetworkModel::new(Duration::ZERO, 1.0, 0.0, 0.0, -0.1).is_err());
        assert!(NetworkModel::new(Duration::ZERO, 1.0, -1.0, 0.0, 0.0).is_err());
        assert!(NetworkModel::new(Duration::ZERO, 1.0, 0.0, 0.0, 0.0).is_ok());
    }

    #[test]
    fn ideal_is_instant_and_lossless() {
        let net = NetworkModel::ideal();
        let mut rng = Rng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(net.sample_transfer(1 << 20, &mut rng), Some(Duration::ZERO));
        }
        assert_eq!(net.loss(), 0.0);
    }

    #[test]
    fn latency_grows_with_payload() {
        // 1 MB at 20 MB/s = 50 ms of serialization.
        let net = NetworkModel::new(Duration::from_ms(1), 20e6, 0.0, 0.0, 0.0).unwrap();
        let mut rng = Rng::seed_from(2);
        let small = net.sample_transfer(1000, &mut rng).unwrap();
        let big = net.sample_transfer(1_000_000, &mut rng).unwrap();
        assert!(big > small);
        assert_eq!(net.deterministic_latency(1_000_000), Duration::from_ms(51));
    }

    #[test]
    fn loss_rate_approximately_respected() {
        let net = NetworkModel::new(Duration::ZERO, 1e6, 0.0, 0.0, 0.2).unwrap();
        let mut rng = Rng::seed_from(3);
        let n = 20_000;
        let lost = (0..n)
            .filter(|_| net.sample_transfer(10, &mut rng).is_none())
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn jitter_adds_variance() {
        let flat = NetworkModel::new(Duration::from_ms(1), 1e9, 0.0, 0.0, 0.0).unwrap();
        let jittery = NetworkModel::new(Duration::from_ms(1), 1e9, 5.0, 0.5, 0.0).unwrap();
        let mut rng = Rng::seed_from(4);
        let flat_samples: Vec<f64> = (0..100)
            .map(|_| flat.sample_transfer(10, &mut rng).unwrap().as_ms_f64())
            .collect();
        let jitter_samples: Vec<f64> = (0..100)
            .map(|_| jittery.sample_transfer(10, &mut rng).unwrap().as_ms_f64())
            .collect();
        assert!(flat_samples
            .iter()
            .all(|&x| (x - flat_samples[0]).abs() < 1e-9));
        let min = jitter_samples.iter().cloned().fold(f64::MAX, f64::min);
        let max = jitter_samples.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 1.0, "jitter range too small: {min}..{max}");
        // Jitter is additive: never below the floor.
        assert!(min >= 1.0);
    }

    #[test]
    fn observed_transfer_matches_unobserved_stream() {
        let obs = rto_obs::Obs::default();
        let net = NetworkModel::new(Duration::ZERO, 1e6, 1.0, 0.3, 0.2).unwrap();
        let mut a = Rng::seed_from(8);
        let mut b = Rng::seed_from(8);
        let mut delivered = 0u64;
        let mut lost = 0u64;
        for _ in 0..500 {
            let plain = net.sample_transfer(100, &mut a);
            let observed = net.sample_transfer_observed(100, &mut b, &obs);
            assert_eq!(plain, observed, "observation must not perturb the stream");
            match observed {
                Some(_) => delivered += 1,
                None => lost += 1,
            }
        }
        let snap = obs.metrics().snapshot();
        assert_eq!(snap.counter("net_messages_total"), Some(500));
        assert_eq!(snap.counter("net_messages_lost_total"), Some(lost));
        assert_eq!(snap.histogram("net_transfer_ns").unwrap().count, delivered);
    }

    #[test]
    fn traced_transfer_matches_stream_and_tags_spans() {
        use rto_obs::{MemorySink, Obs, TraceEvent};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let obs = Obs::with_sink(sink.clone());
        let net = NetworkModel::new(Duration::ZERO, 1e6, 1.0, 0.3, 0.2).unwrap();
        let ctx = rto_obs::span::offload_ctx(3);
        let mut a = Rng::seed_from(8);
        let mut b = Rng::seed_from(8);
        for k in 0..100u64 {
            let plain = net.sample_transfer(100, &mut a);
            let traced = net.sample_transfer_traced(100, &mut b, &obs, k, Some(ctx));
            assert_eq!(plain, traced, "tracing must not perturb the stream");
        }
        let records = sink.snapshot();
        assert_eq!(records.len(), 100);
        for rec in &records {
            assert_eq!(rec.span, Some(ctx));
            match rec.event {
                TraceEvent::NetTransfer {
                    payload_bytes,
                    elapsed_ns,
                    lost,
                } => {
                    assert_eq!(payload_bytes, 100);
                    if lost {
                        assert_eq!(elapsed_ns, 0);
                    }
                }
                ref other => panic!("unexpected event {other:?}"),
            }
        }
        let snap = obs.metrics().snapshot();
        assert_eq!(snap.counter("net_messages_total"), Some(100));
    }

    #[test]
    fn wlan_preset_reasonable() {
        let net = NetworkModel::wlan();
        let mut rng = Rng::seed_from(5);
        let mut got_some = false;
        for _ in 0..100 {
            if let Some(d) = net.sample_transfer(60_000, &mut rng) {
                assert!(d >= Duration::from_ms(1));
                assert!(d < Duration::from_secs(1));
                got_some = true;
            }
        }
        assert!(got_some);
    }
}
