//! The case-study contention scenarios (paper §6.1.3).
//!
//! The paper evaluates three server conditions:
//!
//! 1. **Busy** — "the GPU server in the network condition is busy to
//!    process other applications. Only a small number of offloaded tasks
//!    can get computation results."
//! 2. **NotBusy** — "not busy, but it still processes some other
//!    applications. A part of offloaded tasks can get computation results
//!    successfully."
//! 3. **Idle** — "the GPU server is idle and it only processes these
//!    offloaded tasks. A large number of offloaded tasks can get
//!    computation results."
//!
//! We realize them as background-load intensities on the
//! [`crate::gpu::GpuServer`]: the *same* server and network, with Poisson
//! background jobs competing for the two boards at utilizations of ≈ 0.95
//! (busy), ≈ 0.68 (not busy) and 0 (idle).

use crate::error::ServerError;
use crate::gpu::GpuServer;
use crate::network::NetworkModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A server contention scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Heavily contended: most offloads miss their estimated response
    /// time.
    Busy,
    /// Moderately contended: a fair share of offloads succeed.
    NotBusy,
    /// Uncontended: almost all offloads succeed.
    Idle,
}

impl Scenario {
    /// All three scenarios, in the paper's order.
    pub const ALL: [Scenario; 3] = [Scenario::Busy, Scenario::NotBusy, Scenario::Idle];

    /// Background Poisson arrival rate (jobs/second).
    pub fn background_rate_per_sec(self) -> f64 {
        match self {
            Scenario::Busy => 42.0,
            Scenario::NotBusy => 30.0,
            Scenario::Idle => 0.0,
        }
    }

    /// Mean background job service time (milliseconds, exponential).
    pub fn background_service_mean_ms(self) -> f64 {
        match self {
            Scenario::Busy => 45.0,
            Scenario::NotBusy => 45.0,
            Scenario::Idle => 0.0,
        }
    }

    /// The implied background utilization of the two-board server.
    pub fn background_utilization(self) -> f64 {
        self.background_rate_per_sec() * self.background_service_mean_ms()
            / 1e3
            / Self::NUM_BOARDS as f64
    }

    /// Number of GPU boards (the paper's server has two Tesla M2050s).
    pub const NUM_BOARDS: usize = 2;

    /// Mean GPU service time of a nominal (`compute_scale` 1) offloaded
    /// kernel, in milliseconds.
    pub const SERVICE_MEAN_MS: f64 = 60.0;

    /// Coefficient of variation of the GPU service time.
    pub const SERVICE_CV: f64 = 0.35;

    /// Builds the case-study server under this scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError`] if assembly fails (it cannot with these
    /// presets).
    pub fn build_server(self, seed: u64) -> Result<GpuServer, ServerError> {
        GpuServer::new(
            Self::NUM_BOARDS,
            Self::SERVICE_MEAN_MS,
            Self::SERVICE_CV,
            self.background_rate_per_sec(),
            self.background_service_mean_ms(),
            NetworkModel::wlan(),
            seed,
        )
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Scenario::Busy => "busy",
            Scenario::NotBusy => "not-busy",
            Scenario::Idle => "idle",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{OffloadRequest, OffloadServer};
    use rto_core::time::{Duration, Instant};

    /// Mean response time of 200 probe requests, 100 ms apart.
    fn mean_response_ms(scenario: Scenario, seed: u64) -> f64 {
        let mut server = scenario.build_server(seed).unwrap();
        let req = OffloadRequest::new(0).with_payload_bytes(100_000);
        let mut total = 0.0;
        let mut count = 0usize;
        for k in 0..200u64 {
            let now = Instant::ZERO + Duration::from_ms(100 * k);
            if let Some(t) = server.submit(&req, now).arrival() {
                total += t.since(now).as_ms_f64();
                count += 1;
            }
        }
        total / count as f64
    }

    #[test]
    fn scenarios_are_ordered_by_contention() {
        let busy = mean_response_ms(Scenario::Busy, 1);
        let not_busy = mean_response_ms(Scenario::NotBusy, 1);
        let idle = mean_response_ms(Scenario::Idle, 1);
        assert!(
            busy > not_busy && not_busy > idle,
            "busy {busy:.1} > not-busy {not_busy:.1} > idle {idle:.1} violated"
        );
    }

    #[test]
    fn utilizations_match_narrative() {
        assert!(Scenario::Busy.background_utilization() > 0.9);
        let nb = Scenario::NotBusy.background_utilization();
        assert!(nb > 0.5 && nb < 0.9, "not-busy utilization {nb}");
        assert_eq!(Scenario::Idle.background_utilization(), 0.0);
    }

    #[test]
    fn all_lists_three() {
        assert_eq!(Scenario::ALL.len(), 3);
        assert_eq!(Scenario::Busy.to_string(), "busy");
        assert_eq!(Scenario::NotBusy.to_string(), "not-busy");
        assert_eq!(Scenario::Idle.to_string(), "idle");
    }

    #[test]
    fn idle_server_is_fast() {
        let idle = mean_response_ms(Scenario::Idle, 3);
        // Service mean 60 ms + WLAN latency: well under 200 ms on average.
        assert!(idle < 200.0, "idle mean {idle} ms");
    }
}
