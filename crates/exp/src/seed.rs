//! Counter-based per-trial RNG stream derivation.
//!
//! Every trial in an experiment matrix gets its own seed, derived as a
//! pure function of `(base_seed, point_index, trial_index)` — no shared
//! generator state, so trials can run in any order on any number of
//! worker threads and still draw identical streams.
//!
//! The construction is SplitMix64 in counter mode:
//!
//! 1. finalize the base seed through one SplitMix64 step (so similar
//!    base seeds decorrelate);
//! 2. form the 64-bit trial counter `point_index · 2³² + trial_index`;
//! 3. jump the SplitMix64 state by `counter` increments in O(1)
//!    (`state = finalized_base + counter · γ`) and take one output.
//!
//! Because the SplitMix64 increment γ is odd, `counter ↦ counter · γ`
//! is a bijection on `u64`, and the SplitMix64 output function is a
//! bijection of the state — so **two distinct `(point, trial)` cells of
//! the same experiment can never collide** as long as both indices fit
//! in 32 bits (any realistic matrix; the largest grid in this repo is
//! tens of points × tens of trials). A property test over a 10 000-cell
//! grid pins this down.
//!
//! This replaces the ad-hoc XOR scheme the serial sweep used
//! (`base ^ (trial << 32) ^ ((util * 1000.0) as u64)`), which collided
//! whenever two utilization points truncated to the same integer
//! millis — see [`legacy_xor_seed`] and the regression test.

/// The SplitMix64 additive constant (golden-ratio increment), odd by
/// construction.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One SplitMix64 step: advance `state` by γ and return the mixed
/// output. Identical to the seeding routine in `rto-stats`.
#[inline]
#[must_use]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for trial `(point_index, trial_index)` of an
/// experiment keyed by `base_seed`.
///
/// Collision-free for all `point_index, trial_index < 2³²` at a fixed
/// `base_seed` (see the module docs for why). Pure and `O(1)`: the
/// result does not depend on how many other trials ran before, which is
/// what makes parallel runs bit-identical to serial ones.
#[inline]
#[must_use]
pub fn derive_seed(base_seed: u64, point_index: u64, trial_index: u64) -> u64 {
    debug_assert!(point_index < (1 << 32), "point index must fit in 32 bits");
    debug_assert!(trial_index < (1 << 32), "trial index must fit in 32 bits");
    // Finalize the base seed so that base seeds 0, 1, 2… land far apart.
    let mut state = base_seed;
    let finalized = splitmix64(&mut state);
    // Counter mode: jump the stream by `counter` increments in O(1),
    // then emit one value. `counter * GAMMA` is a bijection (γ is odd).
    let counter = (point_index << 32) | (trial_index & 0xFFFF_FFFF);
    let mut jumped = finalized.wrapping_add(counter.wrapping_mul(GAMMA));
    splitmix64(&mut jumped)
}

/// The **broken** seed derivation the serial sweep used, kept only as a
/// regression witness (and to let tests demonstrate the collision class
/// that motivated [`derive_seed`]).
///
/// `(util * 1000.0) as u64` truncates the utilization to integer
/// millis, so any two points within the same milli-utilization bucket
/// (e.g. `0.1001` and `0.1009`) produced *identical* seeds for every
/// trial index — their "independent" samples were perfectly correlated.
#[must_use]
pub fn legacy_xor_seed(base_seed: u64, trial_index: u64, util: f64) -> u64 {
    base_seed ^ (trial_index << 32) ^ ((util * 1000.0).clamp(0.0, u64::MAX as f64) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_pure() {
        assert_eq!(derive_seed(42, 3, 7), derive_seed(42, 3, 7));
    }

    #[test]
    fn nearby_cells_are_unrelated() {
        let a = derive_seed(0, 0, 0);
        let b = derive_seed(0, 0, 1);
        let c = derive_seed(0, 1, 0);
        let d = derive_seed(1, 0, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(b, c);
    }

    #[test]
    fn small_grid_has_no_duplicates() {
        let mut seen = std::collections::HashSet::new();
        for point in 0..64u64 {
            for trial in 0..64u64 {
                assert!(
                    seen.insert(derive_seed(2014, point, trial)),
                    "collision at ({point}, {trial})"
                );
            }
        }
    }

    #[test]
    fn legacy_scheme_collides_on_float_truncation() {
        // Two distinct utilization points, same integer millis: the old
        // scheme hands every trial the same seed at both points.
        assert_eq!(
            legacy_xor_seed(33, 0, 0.1001),
            legacy_xor_seed(33, 0, 0.1009)
        );
        // The counter-based derivation keeps distinct points distinct.
        assert_ne!(derive_seed(33, 1, 0), derive_seed(33, 2, 0));
    }
}
