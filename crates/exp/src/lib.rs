//! # rto-exp — parallel, deterministic experiment engine
//!
//! The paper's evaluation is a trial matrix: utilization points ×
//! seeds × horizons, thousands of independent simulations. This crate
//! runs such matrices in parallel on plain `std::thread` (the
//! workspace is offline — no rayon) while keeping the one property a
//! reproduction cannot negotiate away:
//!
//! > **Determinism contract.** For a pure trial function, the output
//! > of [`run_matrix`] is bit-identical for every `--jobs N`
//! > (including `N = 1`), for any completion order, and for warm vs.
//! > cold cache.
//!
//! Three mechanisms add up to that guarantee:
//!
//! * [`pool`] — a fixed-size worker pool that distributes trial
//!   *indices* through an atomic cursor and collects results into
//!   index-keyed slots, so output order never depends on scheduling;
//! * [`seed`] — counter-based SplitMix64 stream derivation making each
//!   trial's seed a pure, collision-free function of
//!   `(base_seed, point, trial)` — no shared RNG state to race on;
//! * [`cache`] — a content-hashed per-trial result cache (FNV-1a keyed,
//!   embedded-key verified, bit-exact float codec) under
//!   `target/rto-exp/`, so a re-run after editing one point simulates
//!   only the delta.
//!
//! Progress and cost are observable through `rto-obs`: the
//! `exp_trials_completed_total` / `exp_trials_cached_total` counters,
//! the `exp_trial_duration_ns` histogram, and one
//! `TraceEvent::TrialDone` per finished trial.
//!
//! ## Example
//!
//! ```
//! use rto_exp::{run_matrix, ExpOptions, MatrixSpec};
//!
//! let spec = MatrixSpec {
//!     name: "demo".into(),
//!     fingerprint: "v1".into(),
//!     base_seed: 42,
//!     point_keys: vec!["util=0.3".into(), "util=0.5".into()],
//!     trials_per_point: 4,
//! };
//! // Trial results implement `TrialData`; `String` does out of the box.
//! let run = run_matrix(&spec, &ExpOptions::default(), |ctx| {
//!     format!("seed={:016x}", ctx.seed)
//! });
//! assert_eq!(run.points.len(), 2);
//! assert_eq!(run.stats.trials_total, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod pool;
pub mod seed;

pub use cache::{f64_from_hex, f64_hex, fnv64, TrialCache, TrialData};
pub use engine::{
    default_cache_root, run_matrix, run_matrix_observed, ExpOptions, MatrixRun, MatrixSpec,
    RunStats, TrialCtx,
};
pub use pool::{effective_jobs, run_indexed};
pub use seed::{derive_seed, legacy_xor_seed};
