//! Content-hashed trial-result cache under `target/rto-exp/`.
//!
//! Each trial's result is stored in its own file named by the FNV-1a
//! hash of the trial's **content key** (matrix name, spec fingerprint,
//! base seed, the point's content key, trial index, derived seed). The
//! key is also embedded verbatim in the file header, so a hash
//! collision can never serve the wrong payload — the embedded key
//! disambiguates, exactly like `rto-analyze`'s fact cache.
//!
//! Because the key covers only *that trial's* inputs, editing one point
//! of a sweep invalidates only that point's files: a warm re-run
//! simulates just the delta.
//!
//! Results round-trip through the [`TrialData`] trait. Floats must be
//! encoded via [`f64_hex`]/[`f64_from_hex`] (IEEE-754 bit patterns in
//! hex), **not** decimal formatting — the determinism contract promises
//! warm runs are byte-identical to cold ones, and decimal round-trips
//! through the vendored serde shim are not guaranteed bit-exact.
//!
//! Every load failure mode (missing file, bad header, version bump, key
//! mismatch, payload decode error) degrades to a cache **miss**, never
//! an error: the engine simply re-simulates the trial.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Cache format version; bump on any layout change to invalidate old
/// entries wholesale.
const VERSION: u32 = 1;

/// Magic tag opening every trial file.
const MAGIC: &str = "rto-exp-trial";

/// A value that can round-trip through the trial cache.
///
/// `encode` must produce a *single line* (the escaper handles embedded
/// newlines, but keeping encodings line-shaped keeps files greppable)
/// and `decode` must be its exact inverse: `decode(&encode(v))` has to
/// reproduce `v` **bit-for-bit**, including float payloads (use
/// [`f64_hex`]).
pub trait TrialData: Sized {
    /// Serializes `self` into a string `decode` can reverse exactly.
    fn encode(&self) -> String;
    /// Parses a string produced by `encode`; `None` on any mismatch
    /// (treated as a cache miss, never an error).
    fn decode(s: &str) -> Option<Self>;
}

/// Encodes an `f64` as its IEEE-754 bit pattern in fixed-width hex —
/// the only float codec the cache sanctions, because it is bit-exact
/// by construction.
#[must_use]
pub fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Inverse of [`f64_hex`].
#[must_use]
pub fn f64_from_hex(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// 64-bit FNV-1a over a byte string — the same keying hash
/// `rto-analyze` uses for its fact cache; collisions are tolerated
/// because the full key is embedded in the entry.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Escapes tabs, newlines, carriage returns, and backslashes so keys
/// and payloads can live on one line of a tab-separated header.
#[must_use]
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`esc`]; `None` on a dangling or unknown escape.
#[must_use]
fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Keeps only filesystem-safe characters of a matrix name for the
/// cache subdirectory; everything else becomes `_`.
#[must_use]
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// An open per-matrix trial cache directory.
///
/// One instance is shared (by reference) across all worker threads; it
/// holds only a path, and every operation is a self-contained file
/// read or write of a distinct per-trial file, so no locking is
/// needed.
#[derive(Debug)]
pub struct TrialCache {
    dir: PathBuf,
}

impl TrialCache {
    /// Opens (creating if needed) the cache directory for `matrix_name`
    /// under `root` (conventionally `target/rto-exp`).
    ///
    /// # Errors
    /// Propagates directory-creation failures; callers treat that as
    /// "run without a cache".
    pub fn open(root: &Path, matrix_name: &str) -> io::Result<Self> {
        let dir = root.join(sanitize(matrix_name));
        fs::create_dir_all(&dir)?;
        Ok(TrialCache { dir })
    }

    /// The file that would hold the entry for `key`.
    #[must_use]
    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.trial", fnv64(key.as_bytes())))
    }

    /// Looks up `key`; any failure mode is a miss.
    #[must_use]
    pub fn load<R: TrialData>(&self, key: &str) -> Option<R> {
        // analyze: allow(A6): content-addressed trial cache; a hit replays byte-identical recorded rows
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        let mut lines = text.lines();
        let header = lines.next()?;
        let mut parts = header.split('\t');
        if parts.next()? != MAGIC {
            return None;
        }
        if parts.next()?.parse::<u32>().ok()? != VERSION {
            return None;
        }
        // Embedded key check: an FNV collision lands here and misses
        // instead of serving a stranger's payload.
        if unesc(parts.next()?)? != key {
            return None;
        }
        R::decode(&unesc(lines.next()?)?)
    }

    /// Stores `value` under `key`, overwriting any previous entry.
    ///
    /// # Errors
    /// Propagates I/O failures; the engine ignores them (a failed store
    /// only costs a future re-simulation).
    pub fn store<R: TrialData>(&self, key: &str, value: &R) -> io::Result<()> {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\t');
        out.push_str(&VERSION.to_string());
        out.push('\t');
        out.push_str(&esc(key));
        out.push('\n');
        out.push_str(&esc(&value.encode()));
        out.push('\n');
        let mut file = fs::File::create(self.entry_path(key))?;
        file.write_all(out.as_bytes())
    }
}

impl TrialData for String {
    fn encode(&self) -> String {
        self.clone()
    }
    fn decode(s: &str) -> Option<Self> {
        Some(s.to_owned())
    }
}

/// Fallible trials cache their errors too: a trial is a pure function
/// of its context, so an error is just as reproducible as a value and
/// re-simulating it would yield the same error again.
impl<T: TrialData> TrialData for Result<T, String> {
    fn encode(&self) -> String {
        match self {
            Ok(v) => format!("O{}", v.encode()),
            Err(e) => format!("E{e}"),
        }
    }
    fn decode(s: &str) -> Option<Self> {
        let rest = s.get(1..)?;
        match s.chars().next()? {
            'O' => T::decode(rest).map(Ok),
            'E' => Some(Err(rest.to_owned())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rto-exp-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_a_value() {
        let root = temp_root("roundtrip");
        let cache = TrialCache::open(&root, "unit").expect("open cache");
        let key = "matrix\u{1f}fp\u{1f}7\u{1f}util=0.5\u{1f}3\u{1f}00ff";
        assert_eq!(cache.load::<String>(key), None);
        cache.store(key, &String::from("payload")).expect("store");
        assert_eq!(cache.load::<String>(key), Some(String::from("payload")));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn key_mismatch_is_a_miss_even_with_a_planted_collision() {
        let root = temp_root("collide");
        let cache = TrialCache::open(&root, "unit").expect("open cache");
        cache.store("key-a", &String::from("va")).expect("store");
        // Forge a file whose name matches key-b's hash but whose
        // embedded key says otherwise.
        let forged = cache.entry_path("key-b");
        fs::write(&forged, format!("{MAGIC}\t{VERSION}\tkey-c\nvc\n")).expect("forge");
        assert_eq!(cache.load::<String>("key-b"), None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn version_bump_and_garbage_are_misses() {
        let root = temp_root("garbage");
        let cache = TrialCache::open(&root, "unit").expect("open cache");
        let path = cache.entry_path("k");
        fs::write(&path, format!("{MAGIC}\t999\tk\nv\n")).expect("write stale");
        assert_eq!(cache.load::<String>("k"), None);
        fs::write(&path, "not a cache file at all").expect("write junk");
        assert_eq!(cache.load::<String>("k"), None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn escaping_round_trips_awkward_keys() {
        let nasty = "tabs\there\nnewlines\\slashes\rret";
        assert_eq!(unesc(&esc(nasty)).as_deref(), Some(nasty));
        assert!(!esc(nasty).contains('\n'));
        assert!(unesc("dangling\\").is_none());
        assert!(unesc("bad\\q").is_none());
    }

    #[test]
    fn f64_hex_is_bit_exact() {
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, 0.1 + 0.2, f64::INFINITY] {
            let back = f64_from_hex(&f64_hex(v)).expect("parse");
            assert_eq!(back.to_bits(), v.to_bits());
        }
        let nan = f64_from_hex(&f64_hex(f64::NAN)).expect("parse");
        assert_eq!(nan.to_bits(), f64::NAN.to_bits());
        assert!(f64_from_hex("123").is_none());
        assert!(f64_from_hex("zzzzzzzzzzzzzzzz").is_none());
    }

    #[test]
    fn result_payloads_round_trip() {
        type R = Result<String, String>;
        let ok: R = Ok("value".into());
        let err: R = Err("boom".into());
        assert_eq!(R::decode(&ok.encode()), Some(ok));
        assert_eq!(R::decode(&err.encode()), Some(err));
        assert_eq!(R::decode(""), None);
        assert_eq!(R::decode("Xjunk"), None);
    }

    #[test]
    fn sanitize_keeps_names_filesystem_safe() {
        assert_eq!(sanitize("fig2/case study"), "fig2_case_study");
        assert_eq!(sanitize(""), "_");
    }
}
