//! A hand-rolled fixed-size worker pool over `std::thread`.
//!
//! The workspace is offline (no rayon), so the engine brings its own
//! fan-out: `jobs` scoped worker threads pull trial indices from a
//! shared atomic cursor, run the caller's closure, and stream
//! `(index, result)` pairs back over a channel. The collector thread
//! places every result into its index slot, so the output `Vec` is in
//! index order **regardless of completion order** — this is the half of
//! the determinism contract the pool owns (the other half, per-trial
//! seed streams, lives in [`crate::seed`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Resolves a requested job count: `0` means "one worker per available
/// core", anything else is taken literally.
#[must_use]
pub fn effective_jobs(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f(0), f(1), …, f(count - 1)` on a pool of `jobs` worker
/// threads and returns the results in index order.
///
/// * `jobs <= 1` runs inline on the caller thread — no pool, no
///   channel; because results are keyed by index either path yields the
///   same `Vec` for a pure `f`.
/// * `on_done(index, &result)` is invoked on the **collector** thread
///   as each result lands (out of order); the engine uses it for
///   progress metrics and trace events.
// analyze: hot-path
pub fn run_indexed<R, F, D>(count: usize, jobs: usize, f: F, mut on_done: D) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    D: FnMut(usize, &R),
{
    let jobs = effective_jobs(jobs).min(count.max(1));
    if jobs <= 1 {
        return (0..count)
            .map(|i| {
                let r = f(i);
                on_done(i, &r);
                r
            })
            // analyze: allow(A7): one result vector per sweep, sized by the iterator
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            // analyze: allow(A8): the shared cursor is fetch_add'd every iteration, so workers claim strictly increasing indices and break past `count`
            scope.spawn(move || loop {
                // The cursor is the single work-distribution point.
                // Relaxed suffices: uniqueness of the handed-out index
                // comes from `fetch_add`'s read-modify-write atomicity,
                // not from ordering — no other memory is published
                // through the cursor (results travel over the channel,
                // which brings its own happens-before). Pinned by the
                // loom model in `tests/loom_pool.rs`.
                // lint: relaxed-ok: pure index distribution; RMW atomicity alone guarantees uniqueness
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    // Collector hung up (it never does before draining);
                    // nothing useful left to do.
                    break;
                }
            });
        }
        // Drop the collector's own sender so `recv` ends when the last
        // worker finishes.
        drop(tx);
        while let Ok((i, r)) = rx.recv() {
            on_done(i, &r);
            if let Some(slot) = slots.get_mut(i) {
                *slot = Some(r);
            }
        }
    });

    // analyze: allow(A7): one result vector per sweep, assembled after the workers drain
    let out: Vec<R> = slots.into_iter().flatten().collect();
    assert_eq!(
        out.len(),
        count,
        "worker pool lost results (a worker panicked?)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_job_count() {
        let f = |i: usize| i * i;
        let expected: Vec<usize> = (0..100).map(f).collect();
        for jobs in [1, 2, 3, 8, 64] {
            assert_eq!(run_indexed(100, jobs, f, |_, _| {}), expected);
        }
    }

    #[test]
    fn on_done_sees_every_index_exactly_once() {
        for jobs in [1, 4] {
            let mut seen = vec![0usize; 50];
            let out = run_indexed(
                50,
                jobs,
                |i| i + 1,
                |i, r| {
                    assert_eq!(*r, i + 1);
                    seen[i] += 1;
                },
            );
            assert_eq!(out.len(), 50);
            assert!(seen.iter().all(|&c| c == 1), "each index reported once");
        }
    }

    #[test]
    fn empty_matrix_yields_empty_vec() {
        let out = run_indexed(0, 8, |i| i, |_, _| {});
        assert!(out.is_empty());
    }

    #[test]
    fn effective_jobs_resolves_zero_to_at_least_one() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }
}
