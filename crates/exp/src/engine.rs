//! The experiment engine: matrix in, index-ordered results out.
//!
//! [`run_matrix`] flattens a `(point, trial)` matrix into a single
//! index range, fans the trials out over the [`crate::pool`] worker
//! pool, derives each trial's RNG seed with [`crate::seed::derive_seed`]
//! (a pure function of the indices), and optionally consults the
//! [`crate::cache`] before simulating. The combination is the engine's
//! **determinism contract**:
//!
//! > For a pure trial function, the returned results are bit-identical
//! > for every `jobs` value (including 1) and for warm vs. cold cache.
//!
//! Observability: every finished trial increments
//! `exp_trials_completed_total` (the progress counter), feeds the
//! `exp_trial_duration_ns` histogram, bumps `exp_trials_cached_total`
//! when served from cache, and emits a
//! [`TraceEvent::TrialDone`] — all from the collector thread, so sinks
//! and registries see a single writer per run.

use std::path::PathBuf;

use rto_obs::{MetricsShard, Obs, Stopwatch, TraceEvent};

use crate::cache::{TrialCache, TrialData};
use crate::pool::run_indexed;
use crate::seed::derive_seed;

/// Describes one experiment matrix: `point_keys.len()` points times
/// `trials_per_point` trials.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// Human-readable matrix name; also the cache subdirectory.
    pub name: String,
    /// Content fingerprint of everything that shapes a trial *besides*
    /// the per-point key — horizon, scenario constants, code revision
    /// of the trial logic. Part of every cache key, so bump it when
    /// the trial function changes meaning.
    pub fingerprint: String,
    /// Base seed the per-trial streams are derived from.
    pub base_seed: u64,
    /// One content key per matrix point (e.g. `"util=0.300000"`).
    /// Cache keys embed the *key text*, not the index, so inserting a
    /// point invalidates nothing else.
    pub point_keys: Vec<String>,
    /// Trials (seeds) per point.
    pub trials_per_point: usize,
}

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Worker threads; `0` means one per available core, `1` runs
    /// inline. Results do not depend on this value.
    pub jobs: usize,
    /// Cache root directory (conventionally [`default_cache_root`]);
    /// `None` disables caching.
    pub cache_root: Option<PathBuf>,
    /// Observability context for progress/duration metrics and
    /// `TrialDone` events.
    pub obs: Obs,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            jobs: 1,
            cache_root: None,
            obs: Obs::disabled(),
        }
    }
}

/// The conventional cache root, `target/rto-exp`.
#[must_use]
pub fn default_cache_root() -> PathBuf {
    PathBuf::from("target").join("rto-exp")
}

/// Everything a trial function gets to see: its coordinates and its
/// private seed. Trials must draw **all** randomness from `seed` and
/// read nothing mutable that other trials write.
#[derive(Debug, Clone, Copy)]
pub struct TrialCtx {
    /// Point index (row of the matrix).
    pub point: usize,
    /// Trial index within the point.
    pub trial: usize,
    /// Derived seed, `derive_seed(base_seed, point, trial)` — a pure
    /// function of the coordinates, never of execution order.
    pub seed: u64,
}

/// Tallies for one [`run_matrix`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Total trials in the matrix.
    pub trials_total: usize,
    /// Trials actually simulated this run.
    pub trials_simulated: usize,
    /// Trials served from the cache.
    pub trials_cached: usize,
    /// Wall-clock time for the whole matrix, nanoseconds.
    pub wall_ns: u64,
}

/// A completed matrix: `points[p][t]` is trial `t` of point `p`.
#[derive(Debug, Clone)]
pub struct MatrixRun<R> {
    /// Results grouped by point, trials in index order.
    pub points: Vec<Vec<R>>,
    /// Run tallies.
    pub stats: RunStats,
    /// The merge of every simulated trial's private metrics shard (see
    /// [`run_matrix_observed`]). Because [`MetricsShard::merge`] is a
    /// commutative monoid, this value — and its canonical JSON — is
    /// independent of worker count and completion order. Empty for
    /// [`run_matrix`] and for fully cached runs (cache hits re-run no
    /// metrics).
    pub shard: MetricsShard,
}

/// What a worker hands the collector for one trial.
struct TrialOutcome<R> {
    value: R,
    cached: bool,
    elapsed_ns: u64,
    shard: MetricsShard,
}

/// The cache key for one trial — covers everything that determines the
/// trial's result, and nothing shared across trials except the matrix
/// identity, so editing one point leaves every other point's entries
/// valid.
fn trial_key(spec: &MatrixSpec, point: usize, trial: usize, seed: u64) -> String {
    let point_key = spec.point_keys.get(point).map_or("", String::as_str);
    format!(
        "{}\u{1f}{}\u{1f}{}\u{1f}{}\u{1f}{}\u{1f}{:016x}",
        spec.name, spec.fingerprint, spec.base_seed, point_key, trial, seed
    )
}

/// Runs the whole matrix and returns results in `(point, trial)` index
/// order, regardless of `opts.jobs` or cache state.
///
/// `f` must be a pure function of its [`TrialCtx`] (all randomness from
/// `ctx.seed`); that purity is what turns the pool's index-ordered
/// collection into full bit-reproducibility. Cache I/O failures are
/// soft: a failed open disables the cache, a failed store costs a
/// future re-simulation, a failed load is a miss.
pub fn run_matrix<R, F>(spec: &MatrixSpec, opts: &ExpOptions, f: F) -> MatrixRun<R>
where
    R: TrialData + Send,
    F: Fn(&TrialCtx) -> R + Sync,
{
    run_matrix_observed(spec, opts, |ctx, _| f(ctx))
}

/// Like [`run_matrix`], but hands each trial a **private** [`Obs`]
/// (null sink, fresh registry) alongside its [`TrialCtx`]. Whatever the
/// trial records is exported as a [`MetricsShard`] and merged — on the
/// single collector thread — into [`MatrixRun::shard`].
///
/// Per-trial registries are what keep the determinism contract intact
/// under instrumentation: no two trials ever share a counter, so the
/// merged shard is a set-union of per-trial monoid elements and cannot
/// observe scheduling. Cache hits contribute the empty shard (identity).
pub fn run_matrix_observed<R, F>(spec: &MatrixSpec, opts: &ExpOptions, f: F) -> MatrixRun<R>
where
    R: TrialData + Send,
    F: Fn(&TrialCtx, &Obs) -> R + Sync,
{
    let sw = Stopwatch::start();
    let npoints = spec.point_keys.len();
    let trials = spec.trials_per_point;
    let total = npoints * trials;
    if total == 0 {
        return MatrixRun {
            points: (0..npoints).map(|_| Vec::new()).collect(),
            stats: RunStats {
                trials_total: 0,
                trials_simulated: 0,
                trials_cached: 0,
                wall_ns: sw.elapsed_ns(),
            },
            shard: MetricsShard::default(),
        };
    }

    let cache = opts
        .cache_root
        .as_ref()
        .and_then(|root| TrialCache::open(root, &spec.name).ok());

    let run_trial = |i: usize| -> TrialOutcome<R> {
        let point = i / trials;
        let trial = i % trials;
        let seed = derive_seed(spec.base_seed, point as u64, trial as u64);
        let trial_sw = Stopwatch::start();
        let ctx = TrialCtx { point, trial, seed };
        if let Some(cache) = &cache {
            let key = trial_key(spec, point, trial, seed);
            if let Some(value) = cache.load::<R>(&key) {
                return TrialOutcome {
                    value,
                    cached: true,
                    elapsed_ns: trial_sw.elapsed_ns(),
                    shard: MetricsShard::default(),
                };
            }
            let trial_obs = Obs::disabled();
            let value = f(&ctx, &trial_obs);
            // Best effort: a failed store only means re-simulating later.
            let _ = cache.store(&key, &value);
            return TrialOutcome {
                value,
                cached: false,
                elapsed_ns: trial_sw.elapsed_ns(),
                shard: trial_obs.metrics().shard(),
            };
        }
        let trial_obs = Obs::disabled();
        let value = f(&ctx, &trial_obs);
        TrialOutcome {
            value,
            cached: false,
            elapsed_ns: trial_sw.elapsed_ns(),
            shard: trial_obs.metrics().shard(),
        }
    };

    let completed = opts.obs.metrics().counter("exp_trials_completed_total");
    let cached_total = opts.obs.metrics().counter("exp_trials_cached_total");
    let duration = opts.obs.metrics().histogram("exp_trial_duration_ns");
    let progress = opts
        .obs
        .metrics()
        .series("exp_trial_completions", 1_000_000_000);
    let mut simulated = 0usize;
    let mut from_cache = 0usize;
    let mut shard = MetricsShard::default();
    let on_done = |i: usize, out: &TrialOutcome<R>| {
        completed.inc();
        duration.record(out.elapsed_ns);
        progress.record(sw.elapsed_ns(), 1);
        shard.merge(&out.shard);
        if out.cached {
            cached_total.inc();
            from_cache += 1;
        } else {
            simulated += 1;
        }
        opts.obs.emit(
            0,
            TraceEvent::TrialDone {
                point: i / trials,
                trial: i % trials,
                cached: out.cached,
                elapsed_ns: out.elapsed_ns,
            },
        );
    };

    let outcomes = run_indexed(total, opts.jobs, run_trial, on_done);

    let mut points: Vec<Vec<R>> = Vec::with_capacity(npoints);
    let mut it = outcomes.into_iter();
    for _ in 0..npoints {
        points.push(it.by_ref().take(trials).map(|o| o.value).collect());
    }

    MatrixRun {
        points,
        stats: RunStats {
            trials_total: total,
            trials_simulated: simulated,
            trials_cached: from_cache,
            wall_ns: sw.elapsed_ns(),
        },
        shard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{f64_from_hex, f64_hex};
    use rto_obs::MemorySink;
    use std::sync::Arc;

    /// A trial result with a float payload, to exercise the bit-exact
    /// codec end to end.
    #[derive(Debug, Clone, PartialEq)]
    struct Row {
        hits: u64,
        ratio: f64,
    }

    impl TrialData for Row {
        fn encode(&self) -> String {
            format!("{} {}", self.hits, f64_hex(self.ratio))
        }
        fn decode(s: &str) -> Option<Self> {
            let mut parts = s.split(' ');
            let hits = parts.next()?.parse().ok()?;
            let ratio = f64_from_hex(parts.next()?)?;
            if parts.next().is_some() {
                return None;
            }
            Some(Row { hits, ratio })
        }
    }

    fn spec(name: &str) -> MatrixSpec {
        MatrixSpec {
            name: name.to_owned(),
            fingerprint: "fp-v1".to_owned(),
            base_seed: 2014,
            point_keys: (0..5).map(|p| format!("point={p}")).collect(),
            trials_per_point: 7,
        }
    }

    fn trial(ctx: &TrialCtx) -> Row {
        // Pure function of the ctx — mixes the seed so every cell is
        // distinguishable.
        Row {
            hits: ctx.seed ^ (ctx.point as u64) << 1 ^ ctx.trial as u64,
            ratio: (ctx.seed % 1000) as f64 / 1000.0,
        }
    }

    #[test]
    fn results_are_identical_for_any_job_count() {
        let baseline = run_matrix(&spec("det"), &ExpOptions::default(), trial);
        for jobs in [2, 4, 8] {
            let opts = ExpOptions {
                jobs,
                ..ExpOptions::default()
            };
            let run = run_matrix(&spec("det"), &opts, trial);
            assert_eq!(run.points, baseline.points, "jobs={jobs} diverged");
        }
        assert_eq!(baseline.stats.trials_total, 35);
        assert_eq!(baseline.stats.trials_simulated, 35);
        assert_eq!(baseline.stats.trials_cached, 0);
    }

    fn observed_trial(ctx: &TrialCtx, obs: &Obs) -> Row {
        obs.metrics().counter("trial_hits_total").add(ctx.seed % 7);
        obs.metrics()
            .histogram("trial_seed_residue")
            .record(ctx.seed % 1000);
        obs.metrics()
            .series("trial_marks", 10)
            .record((ctx.point as u64) * 100 + ctx.trial as u64, ctx.seed % 3);
        trial(ctx)
    }

    #[test]
    fn observed_shards_are_byte_identical_for_any_job_count() {
        let base = run_matrix_observed(&spec("obs-det"), &ExpOptions::default(), observed_trial);
        assert!(!base.shard.is_empty(), "trials recorded metrics");
        let json = base.shard.to_json();
        for jobs in [2, 8] {
            let opts = ExpOptions {
                jobs,
                ..ExpOptions::default()
            };
            let run = run_matrix_observed(&spec("obs-det"), &opts, observed_trial);
            assert_eq!(run.points, base.points, "jobs={jobs} results diverged");
            assert_eq!(run.shard.to_json(), json, "jobs={jobs} shard diverged");
        }
    }

    #[test]
    fn warm_cache_simulates_nothing_and_matches_cold_output() {
        let root = std::env::temp_dir().join(format!("rto-exp-engine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let opts = ExpOptions {
            jobs: 4,
            cache_root: Some(root.clone()),
            obs: Obs::disabled(),
        };
        let cold = run_matrix(&spec("warmth"), &opts, trial);
        assert_eq!(cold.stats.trials_simulated, 35);
        let warm = run_matrix(&spec("warmth"), &opts, trial);
        assert_eq!(warm.stats.trials_simulated, 0, "warm run re-simulated");
        assert_eq!(warm.stats.trials_cached, 35);
        assert_eq!(warm.points, cold.points);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn emits_progress_metrics_and_trial_done_events() {
        let sink = Arc::new(MemorySink::new());
        let opts = ExpOptions {
            jobs: 2,
            cache_root: None,
            obs: Obs::with_sink(sink.clone()),
        };
        let run = run_matrix(&spec("traced"), &opts, trial);
        assert_eq!(run.stats.trials_total, 35);
        let snap = opts.obs.metrics().snapshot();
        assert_eq!(snap.counter("exp_trials_completed_total"), Some(35));
        let hist = snap.histogram("exp_trial_duration_ns").expect("histogram");
        assert_eq!(hist.count, 35);
        assert_eq!(sink.len(), 35, "one TrialDone per trial");
    }

    #[test]
    fn empty_matrix_is_a_no_op() {
        let mut s = spec("empty");
        s.trials_per_point = 0;
        let run = run_matrix(&s, &ExpOptions::default(), trial);
        assert_eq!(run.points.len(), 5);
        assert!(run.points.iter().all(Vec::is_empty));
        assert_eq!(run.stats.trials_total, 0);
    }
}
