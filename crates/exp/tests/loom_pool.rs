//! loom model for the worker pool's work-distribution cursor.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p rto-exp --test
//! loom_pool` (see `scripts/check.sh`). Without the cfg the file
//! compiles to nothing, so the regular test run is unaffected.
//!
//! `pool::run_indexed` hands out trial indices with
//! `cursor.fetch_add(1, Ordering::Relaxed)`. The claim justifying
//! `Relaxed` (over the previous `SeqCst`) is that uniqueness of the
//! returned indices comes from the read-modify-write atomicity of
//! `fetch_add`, not from any ordering guarantee: no other memory is
//! published through the cursor, so there is nothing for a stronger
//! ordering to order. The models below pin exactly that claim on the
//! distilled distribution loop, under whatever interleavings the loom
//! backend explores (exhaustive with the real crate, randomized stress
//! with the vendored shim).
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;

/// Two workers draining a 4-item queue: every index in `0..count` is
/// claimed by exactly one worker, with no gaps and no duplicates.
#[test]
fn relaxed_cursor_hands_each_index_out_exactly_once() {
    loom::model(|| {
        const COUNT: usize = 4;
        let cursor = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&cursor);
        let worker = move |cursor: Arc<AtomicUsize>| {
            let mut mine = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= COUNT {
                    break;
                }
                mine.push(i);
            }
            mine
        };
        let w2 = worker.clone();
        let h = loom::thread::spawn(move || w2(c2));
        let mut claimed = worker(cursor);
        claimed.extend(h.join().expect("worker thread"));
        claimed.sort_unstable();
        assert_eq!(
            claimed,
            (0..COUNT).collect::<Vec<_>>(),
            "lost or duplicated an index"
        );
    });
}

/// The cursor never hands out an in-range index twice even when a
/// third observer hammers it concurrently (over-claims past `count`
/// are fine — workers discard them — but in-range claims are unique).
#[test]
fn relaxed_cursor_overclaims_are_out_of_range_only() {
    loom::model(|| {
        const COUNT: usize = 3;
        let cursor = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let c = Arc::clone(&cursor);
            handles.push(loom::thread::spawn(move || {
                let mut mine = Vec::new();
                for _ in 0..COUNT {
                    let i = c.fetch_add(1, Ordering::Relaxed);
                    if i < COUNT {
                        mine.push(i);
                    }
                }
                mine
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("claimer thread"));
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            COUNT,
            "an in-range index was claimed twice: {all:?}"
        );
    });
}
