//! Property tests for the counter-based seed derivation.
//!
//! The headline property — **no duplicate seeds across a 10 000-cell
//! `(point, trial)` grid** for arbitrary base seeds — is exactly the
//! guarantee the old XOR scheme (`base ^ (trial << 32) ^
//! ((util * 1000.0) as u64)`) failed to provide: it truncated the
//! utilization to integer millis, so nearby sweep points shared every
//! trial seed and their "independent" samples were perfectly
//! correlated. A deterministic regression test pinning that collision
//! class lives alongside these properties.

use proptest::prelude::*;
use rto_exp::{derive_seed, legacy_xor_seed};
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// 100 points × 100 trials = 10 000 cells: all seeds distinct, for
    /// any base seed.
    #[test]
    fn ten_thousand_cell_grid_has_no_duplicate_seeds(base in 0u64..=u64::MAX) {
        let mut seen = HashSet::with_capacity(10_000);
        for point in 0..100u64 {
            for trial in 0..100u64 {
                let seed = derive_seed(base, point, trial);
                prop_assert!(
                    seen.insert(seed),
                    "duplicate seed {seed:#018x} at ({point}, {trial})"
                );
            }
        }
    }

    /// Derivation is a pure function of its inputs (no hidden state).
    #[test]
    fn derivation_is_deterministic(
        base in 0u64..=u64::MAX,
        point in 0u64..(1 << 32),
        trial in 0u64..(1 << 32),
    ) {
        prop_assert_eq!(
            derive_seed(base, point, trial),
            derive_seed(base, point, trial)
        );
    }

    /// Distinct base seeds give a given cell unrelated streams.
    #[test]
    fn base_seeds_decorrelate(base in 0u64..=u64::MAX, point in 0u64..1000, trial in 0u64..1000) {
        prop_assert!(
            derive_seed(base, point, trial)
                != derive_seed(base.wrapping_add(1), point, trial)
        );
    }
}

/// The motivating regression: two utilization points in the same
/// milli-utilization bucket handed the legacy scheme identical seeds
/// for *every* trial, while the counter-based derivation keeps every
/// cell distinct.
#[test]
fn legacy_xor_scheme_collides_where_the_new_derivation_does_not() {
    // 0.1001 and 0.1009 both truncate to 100 millis.
    for trial in 0..16u64 {
        assert_eq!(
            legacy_xor_seed(2014, trial, 0.1001),
            legacy_xor_seed(2014, trial, 0.1009),
            "legacy scheme was expected to collide at trial {trial}"
        );
    }
    // Same two sweep points under the new derivation (as adjacent point
    // indices): no trial shares a seed between them.
    for trial in 0..16u64 {
        assert_ne!(
            derive_seed(2014, 10, trial),
            derive_seed(2014, 11, trial),
            "new derivation must separate adjacent points at trial {trial}"
        );
    }
}
