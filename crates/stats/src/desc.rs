//! Descriptive statistics: online accumulators, quantiles, histograms.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Numerically stable online mean/variance accumulator (Welford's
/// algorithm), plus min/max tracking.
///
/// # Example
///
/// ```
/// use rto_stats::desc::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for the empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count.saturating_sub(1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Coefficient of variation (`std/mean`), or `None` when the mean is
    /// zero or the accumulator is empty.
    pub fn cv(&self) -> Option<f64> {
        (self.count > 0 && self.mean.abs() > 0.0).then(|| self.std_dev() / self.mean.abs())
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean,
            self.std_dev(),
            self.min().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN),
        )
    }
}

/// A compact five-number-plus summary of a batch of samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile (type-7 interpolation).
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a batch of samples.
    ///
    /// Returns `None` for an empty batch or one containing NaN.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() || samples.iter().any(|x| x.is_nan()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp); // NaN excluded above
        let mut acc = OnlineStats::new();
        for &x in samples {
            acc.push(x);
        }
        Some(Summary {
            count: samples.len(),
            mean: acc.mean(),
            std_dev: acc.std_dev(),
            min: sorted[0],
            q25: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q75: quantile_sorted(&sorted, 0.75),
            p95: quantile_sorted(&sorted, 0.95),
            p99: quantile_sorted(&sorted, 0.99),
            max: sorted[sorted.len() - 1],
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} p50={:.4} p95={:.4} p99={:.4} max={:.4}",
            self.count,
            self.mean,
            self.std_dev,
            self.min,
            self.median,
            self.p95,
            self.p99,
            self.max
        )
    }
}

/// Computes the `q`-quantile of **sorted** data using linear interpolation
/// (R type-7, the numpy default).
///
/// # Panics
///
/// Panics if `data` is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    if data.len() == 1 {
        return data[0];
    }
    let pos = q.clamp(0.0, 1.0) * (data.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    data[lo] + (data[hi] - data[lo]) * frac
}

/// Computes the `q`-quantile of unsorted data (sorts a copy).
///
/// # Panics
///
/// Panics if `data` is empty, contains NaN, or `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp); // total order; NaN sorts last and is rejected below
    quantile_sorted(&sorted, q)
}

/// A fixed-bin histogram over a closed range, with underflow/overflow
/// counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, `lo >= hi`, or bounds are not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad histogram range"
        );
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width).clamp(0.0, u64::MAX as f64) as usize)
                .min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bin counts (in-range only).
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `(lo, hi)` bounds of bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bin_bounds(&self, idx: usize) -> (f64, f64) {
        assert!(idx < self.bins.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (
            self.lo + width * idx as f64,
            self.lo + width * (idx + 1) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance 4 -> sample variance 4*8/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.cv(), None);
    }

    #[test]
    fn online_stats_single() {
        let mut s = OnlineStats::new();
        s.push(3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(3.0));
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn quantile_interpolation() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert_eq!(quantile(&data, 0.5), 2.5);
        assert!((quantile(&data, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_singleton() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_bad_level_panics() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn summary_of_batch() {
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&data).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.median - 50.5).abs() < 1e-12);
        assert!(s.p95 > s.q75 && s.p99 > s.p95);
    }

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn summary_display_contains_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        let text = s.to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("mean="));
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_bounds(0), (0.0, 2.0));
        assert_eq!(h.bin_bounds(4), (8.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn online_stats_display() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        assert!(s.to_string().contains("n=1"));
    }
}
