//! Deterministic statistics substrate for the `rto` workspace.
//!
//! This crate provides everything the simulator, the server model, and the
//! benefit estimator need from "statistics land" without pulling in heavier
//! dependencies:
//!
//! * [`rng`] — a small, fully deterministic pseudo-random number generator
//!   (SplitMix64-seeded xoshiro256**) that also implements
//!   [`rand::RngCore`] for interoperability.
//! * [`dist`] — probability distributions implemented from first principles
//!   (normal, lognormal, exponential, gamma, Weibull, Pareto, …), all
//!   sampled through a common [`dist::Distribution`] trait.
//! * [`desc`] — descriptive statistics: online mean/variance (Welford),
//!   quantiles, histograms and summaries.
//! * [`ecdf`] — empirical cumulative distribution functions with forward
//!   evaluation and quantile inversion; the Benefit & Response Time
//!   Estimator of the paper is built on these.
//!
//! Everything in this crate is deterministic given a seed: the same seed
//! always produces the same stream on every platform, which is what makes
//! the experiment binaries in `rto-bench` bit-reproducible.
//!
//! # Example
//!
//! ```
//! use rto_stats::rng::Rng;
//! use rto_stats::dist::{Distribution, LogNormal};
//! use rto_stats::desc::OnlineStats;
//!
//! let mut rng = Rng::seed_from(42);
//! let latency = LogNormal::from_mean_cv(10.0, 0.3).unwrap();
//! let mut acc = OnlineStats::new();
//! for _ in 0..1000 {
//!     acc.push(latency.sample(&mut rng));
//! }
//! assert!((acc.mean() - 10.0).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod desc;
pub mod dist;
pub mod ecdf;
pub mod rng;

pub use desc::{Histogram, OnlineStats, Summary};
pub use dist::Distribution;
pub use ecdf::Ecdf;
pub use rng::Rng;
