//! Probability distributions, implemented from first principles.
//!
//! The server model (`rto-server`) composes these to produce response-time
//! distributions for the timing-unreliable component; workload generators
//! use them for execution times and jitter. All distributions sample
//! through the common [`Distribution`] trait and are parameterized at
//! construction time, with validation.
//!
//! Only `f64` distributions are provided; integer quantities are obtained
//! by rounding at the call site, where the rounding policy is a domain
//! decision.

use crate::rng::Rng;
use std::f64::consts::PI;
use std::fmt;

/// Error raised when distribution parameters are invalid.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    what: String,
}

impl ParamError {
    fn new(what: impl Into<String>) -> Self {
        ParamError { what: what.into() }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for ParamError {}

/// A sampleable distribution over `f64`.
///
/// Implementors are immutable; all entropy comes from the [`Rng`] handed to
/// [`Distribution::sample`], which keeps simulation components trivially
/// reproducible. The `Debug` bound keeps composite models (servers,
/// workload generators) debuggable.
pub trait Distribution: std::fmt::Debug {
    /// Draws one sample.
    fn sample(&self, rng: &mut Rng) -> f64;

    /// The theoretical mean, when it exists and is finite.
    fn mean(&self) -> Option<f64> {
        None
    }

    /// Draws `n` samples into a fresh vector.
    fn sample_n(&self, rng: &mut Rng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the bounds are not finite or `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, ParamError> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(ParamError::new("uniform bounds must be finite"));
        }
        if lo > hi {
            return Err(ParamError::new(format!("uniform: lo {lo} > hi {hi}")));
        }
        Ok(Uniform { lo, hi })
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.f64_range(self.lo, self.hi)
    }

    fn mean(&self) -> Option<f64> {
        Some(0.5 * (self.lo + self.hi))
    }
}

/// A distribution that always returns the same value.
///
/// Useful to model deterministic service stages inside an otherwise
/// stochastic pipeline, and in tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Distribution for Constant {
    fn sample(&self, _rng: &mut Rng) -> f64 {
        self.0
    }

    fn mean(&self) -> Option<f64> {
        Some(self.0)
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution with mean `mu` and standard deviation
    /// `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `sigma < 0` or parameters are not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !mu.is_finite() || !sigma.is_finite() {
            return Err(ParamError::new("normal parameters must be finite"));
        }
        if sigma < 0.0 {
            return Err(ParamError::new(format!("normal: sigma {sigma} < 0")));
        }
        Ok(Normal { mu, sigma })
    }

    /// Samples a standard normal via the Box–Muller transform.
    #[inline]
    pub(crate) fn standard(rng: &mut Rng) -> f64 {
        // u1 in (0,1]: avoid ln(0).
        let u1 = 1.0 - rng.f64();
        let u2 = rng.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.mu + self.sigma * Normal::standard(rng)
    }

    fn mean(&self) -> Option<f64> {
        Some(self.mu)
    }
}

/// Lognormal distribution: `exp(N(mu, sigma))`.
///
/// The workhorse for modelling response-time *tails* of the
/// timing-unreliable component: right-skewed, strictly positive, heavy
/// enough to occasionally blow past any estimated response time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal from the *underlying normal's* parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `sigma < 0` or parameters are not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !mu.is_finite() || !sigma.is_finite() {
            return Err(ParamError::new("lognormal parameters must be finite"));
        }
        if sigma < 0.0 {
            return Err(ParamError::new(format!("lognormal: sigma {sigma} < 0")));
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Creates a lognormal with the given *distribution* mean and
    /// coefficient of variation (`std / mean`).
    ///
    /// This parameterization is what server models naturally speak: "mean
    /// service time 7 ms, CV 0.4".
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `mean <= 0` or `cv < 0`.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Result<Self, ParamError> {
        if mean <= 0.0 || mean.is_nan() {
            return Err(ParamError::new(format!("lognormal: mean {mean} <= 0")));
        }
        if cv < 0.0 || cv.is_nan() {
            return Err(ParamError::new(format!("lognormal: cv {cv} < 0")));
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        LogNormal::new(mu, sigma2.sqrt())
    }

    /// Fits a lognormal to positive samples by the method of moments
    /// (match sample mean and coefficient of variation).
    ///
    /// This is how a response-time estimator can *extrapolate* beyond the
    /// largest observation — an empirical CDF says nothing past its
    /// maximum, a fitted tail does.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when fewer than two samples are given or
    /// any sample is non-positive or non-finite.
    pub fn fit(samples: &[f64]) -> Result<Self, ParamError> {
        if samples.len() < 2 {
            return Err(ParamError::new("lognormal fit needs at least two samples"));
        }
        if samples.iter().any(|&x| x <= 0.0 || !x.is_finite()) {
            return Err(ParamError::new(
                "lognormal fit needs positive finite samples",
            ));
        }
        let mut acc = crate::desc::OnlineStats::new();
        for &x in samples {
            acc.push(x);
        }
        let mean = acc.mean();
        let cv = acc.std_dev() / mean;
        LogNormal::from_mean_cv(mean, cv)
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * Normal::standard(rng)).exp()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.mu + 0.5 * self.sigma * self.sigma).exp())
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda` (mean
    /// `1/lambda`).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `lambda <= 0`.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if lambda <= 0.0 || !lambda.is_finite() {
            return Err(ParamError::new(format!(
                "exponential: lambda {lambda} <= 0"
            )));
        }
        Ok(Exponential { lambda })
    }

    /// Creates an exponential distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `mean <= 0`.
    pub fn from_mean(mean: f64) -> Result<Self, ParamError> {
        if mean <= 0.0 || mean.is_nan() {
            return Err(ParamError::new(format!("exponential: mean {mean} <= 0")));
        }
        Exponential::new(1.0 / mean)
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut Rng) -> f64 {
        -(1.0 - rng.f64()).ln() / self.lambda
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.lambda)
    }
}

/// Gamma distribution (shape `k`, scale `theta`), sampled with the
/// Marsaglia–Tsang method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution with shape `k > 0` and scale
    /// `theta > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if either parameter is non-positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, ParamError> {
        if shape <= 0.0 || !shape.is_finite() {
            return Err(ParamError::new(format!("gamma: shape {shape} <= 0")));
        }
        if scale <= 0.0 || !scale.is_finite() {
            return Err(ParamError::new(format!("gamma: scale {scale} <= 0")));
        }
        Ok(Gamma { shape, scale })
    }

    fn sample_shape_ge1(shape: f64, rng: &mut Rng) -> f64 {
        // Marsaglia & Tsang (2000), valid for shape >= 1.
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = Normal::standard(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = rng.f64();
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v3;
            }
            if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3;
            }
        }
    }
}

impl Distribution for Gamma {
    fn sample(&self, rng: &mut Rng) -> f64 {
        if self.shape >= 1.0 {
            Gamma::sample_shape_ge1(self.shape, rng) * self.scale
        } else {
            // Boost trick: Gamma(k) = Gamma(k+1) * U^(1/k) for k < 1.
            let g = Gamma::sample_shape_ge1(self.shape + 1.0, rng);
            let u = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
            g * u.powf(1.0 / self.shape) * self.scale
        }
    }

    fn mean(&self) -> Option<f64> {
        Some(self.shape * self.scale)
    }
}

/// Weibull distribution (shape `k`, scale `lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution with shape `k > 0` and scale
    /// `lambda > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if either parameter is non-positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, ParamError> {
        if shape <= 0.0 || !shape.is_finite() {
            return Err(ParamError::new(format!("weibull: shape {shape} <= 0")));
        }
        if scale <= 0.0 || !scale.is_finite() {
            return Err(ParamError::new(format!("weibull: scale {scale} <= 0")));
        }
        Ok(Weibull { shape, scale })
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut Rng) -> f64 {
        let u = 1.0 - rng.f64();
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }
}

/// Pareto distribution (scale `x_m`, tail index `alpha`): a genuinely
/// heavy-tailed option for adversarial response-time experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with minimum `xm > 0` and tail index
    /// `alpha > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if either parameter is non-positive.
    pub fn new(xm: f64, alpha: f64) -> Result<Self, ParamError> {
        if xm <= 0.0 || !xm.is_finite() {
            return Err(ParamError::new(format!("pareto: xm {xm} <= 0")));
        }
        if alpha <= 0.0 || !alpha.is_finite() {
            return Err(ParamError::new(format!("pareto: alpha {alpha} <= 0")));
        }
        Ok(Pareto { xm, alpha })
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut Rng) -> f64 {
        let u = 1.0 - rng.f64();
        self.xm / u.powf(1.0 / self.alpha)
    }

    fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| {
            let tail_excess = self.alpha - 1.0; // > 0 by the guard
            self.alpha * self.xm / tail_excess
        })
    }
}

/// A shifted distribution: `base + offset`.
///
/// Network latency is typically "propagation floor plus stochastic part";
/// this adapter expresses that composition.
#[derive(Debug, Clone)]
pub struct Shifted<D> {
    base: D,
    offset: f64,
}

impl<D: Distribution> Shifted<D> {
    /// Wraps `base`, adding `offset` to every sample.
    pub fn new(base: D, offset: f64) -> Self {
        Shifted { base, offset }
    }
}

impl<D: Distribution> Distribution for Shifted<D> {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.base.sample(rng) + self.offset
    }

    fn mean(&self) -> Option<f64> {
        self.base.mean().map(|m| m + self.offset)
    }
}

/// A discrete distribution over arbitrary `f64` support points with given
/// (unnormalized) weights, sampled by cumulative inversion.
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    values: Vec<f64>,
    cumulative: Vec<f64>,
}

impl Discrete {
    /// Creates a discrete distribution from `(value, weight)` pairs.
    ///
    /// Weights are normalized internally.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the list is empty, any weight is negative
    /// or non-finite, or all weights are zero.
    pub fn new(pairs: &[(f64, f64)]) -> Result<Self, ParamError> {
        if pairs.is_empty() {
            return Err(ParamError::new("discrete: empty support"));
        }
        let mut total = 0.0;
        for &(v, w) in pairs {
            if !v.is_finite() || !w.is_finite() || w < 0.0 {
                return Err(ParamError::new(format!("discrete: bad pair ({v}, {w})")));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(ParamError::new("discrete: all weights zero"));
        }
        let mut cumulative = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for &(_, w) in pairs {
            acc += w / total;
            cumulative.push(acc);
        }
        // Force the last entry to exactly 1 to make inversion total.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(Discrete {
            values: pairs.iter().map(|&(v, _)| v).collect(),
            cumulative,
        })
    }
}

impl Distribution for Discrete {
    fn sample(&self, rng: &mut Rng) -> f64 {
        let u = rng.f64();
        let idx = self
            .cumulative
            .partition_point(|&c| c <= u)
            .min(self.values.len() - 1);
        self.values[idx]
    }

    fn mean(&self) -> Option<f64> {
        let mut prev = 0.0;
        let mut m = 0.0;
        for (v, c) in self.values.iter().zip(&self.cumulative) {
            m += v * (c - prev);
            prev = *c;
        }
        Some(m)
    }
}

/// A boxed, dynamically-typed distribution, for heterogeneous pipelines.
pub type DynDistribution = Box<dyn Distribution + Send + Sync>;

impl Distribution for DynDistribution {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.as_ref().sample(rng)
    }

    fn mean(&self) -> Option<f64> {
        self.as_ref().mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::OnlineStats;

    fn stats_of<D: Distribution>(d: &D, seed: u64, n: usize) -> OnlineStats {
        let mut rng = Rng::seed_from(seed);
        let mut acc = OnlineStats::new();
        for _ in 0..n {
            acc.push(d.sample(&mut rng));
        }
        acc
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(2.0, 6.0).unwrap();
        let mut rng = Rng::seed_from(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
        }
        let s = stats_of(&d, 2, 50_000);
        assert!((s.mean() - 4.0).abs() < 0.05);
    }

    #[test]
    fn uniform_rejects_bad_params() {
        assert!(Uniform::new(3.0, 1.0).is_err());
        assert!(Uniform::new(f64::NAN, 1.0).is_err());
        assert!(Uniform::new(0.0, f64::INFINITY).is_err());
        assert!(Uniform::new(1.0, 1.0).is_ok());
    }

    #[test]
    fn constant_returns_value() {
        let d = Constant(3.5);
        let mut rng = Rng::seed_from(0);
        assert_eq!(d.sample(&mut rng), 3.5);
        assert_eq!(d.mean(), Some(3.5));
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 2.0).unwrap();
        let s = stats_of(&d, 3, 100_000);
        assert!((s.mean() - 10.0).abs() < 0.05, "mean {}", s.mean());
        assert!((s.std_dev() - 2.0).abs() < 0.05, "std {}", s.std_dev());
    }

    #[test]
    fn normal_rejects_negative_sigma() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn lognormal_positive_and_mean() {
        let d = LogNormal::from_mean_cv(7.0, 0.5).unwrap();
        let mut rng = Rng::seed_from(4);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
        let s = stats_of(&d, 5, 200_000);
        assert!((s.mean() - 7.0).abs() < 0.15, "mean {}", s.mean());
        assert!((d.mean().unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn lognormal_fit_recovers_parameters() {
        let truth = LogNormal::from_mean_cv(50.0, 0.4).unwrap();
        let mut rng = Rng::seed_from(77);
        let samples = truth.sample_n(&mut rng, 20_000);
        let fitted = LogNormal::fit(&samples).unwrap();
        let m = fitted.mean().unwrap();
        assert!((m - 50.0).abs() < 1.5, "fitted mean {m}");
        // The fitted distribution reproduces the tail roughly: sample it
        // and compare 95th percentiles.
        let refit = fitted.sample_n(&mut rng, 20_000);
        let p95_truth = crate::desc::quantile(&samples, 0.95);
        let p95_fit = crate::desc::quantile(&refit, 0.95);
        assert!(
            (p95_fit - p95_truth).abs() / p95_truth < 0.1,
            "p95 {p95_fit} vs {p95_truth}"
        );
    }

    #[test]
    fn lognormal_fit_rejects_bad_samples() {
        assert!(LogNormal::fit(&[]).is_err());
        assert!(LogNormal::fit(&[1.0]).is_err());
        assert!(LogNormal::fit(&[1.0, -2.0]).is_err());
        assert!(LogNormal::fit(&[1.0, 0.0]).is_err());
        assert!(LogNormal::fit(&[1.0, f64::NAN]).is_err());
        assert!(LogNormal::fit(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn lognormal_rejects_bad_params() {
        assert!(LogNormal::from_mean_cv(0.0, 0.5).is_err());
        assert!(LogNormal::from_mean_cv(1.0, -0.1).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::from_mean(4.0).unwrap();
        let s = stats_of(&d, 6, 100_000);
        assert!((s.mean() - 4.0).abs() < 0.1, "mean {}", s.mean());
        assert_eq!(d.mean(), Some(4.0));
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::from_mean(-2.0).is_err());
    }

    #[test]
    fn gamma_moments_large_shape() {
        let d = Gamma::new(4.0, 2.0).unwrap();
        let s = stats_of(&d, 7, 100_000);
        assert!((s.mean() - 8.0).abs() < 0.15, "mean {}", s.mean());
        // var = k * theta^2 = 16
        assert!((s.variance() - 16.0).abs() < 1.2, "var {}", s.variance());
    }

    #[test]
    fn gamma_small_shape_positive() {
        let d = Gamma::new(0.5, 1.0).unwrap();
        let mut rng = Rng::seed_from(8);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
        let s = stats_of(&d, 9, 100_000);
        assert!((s.mean() - 0.5).abs() < 0.05, "mean {}", s.mean());
    }

    #[test]
    fn weibull_shape1_is_exponential() {
        let d = Weibull::new(1.0, 3.0).unwrap();
        let s = stats_of(&d, 10, 100_000);
        assert!((s.mean() - 3.0).abs() < 0.1, "mean {}", s.mean());
    }

    #[test]
    fn pareto_respects_floor_and_mean() {
        let d = Pareto::new(2.0, 3.0).unwrap();
        let mut rng = Rng::seed_from(11);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 2.0);
        }
        // mean = alpha*xm/(alpha-1) = 3
        let s = stats_of(&d, 12, 200_000);
        assert!((s.mean() - 3.0).abs() < 0.1, "mean {}", s.mean());
        assert!(Pareto::new(1.0, 0.5).unwrap().mean().is_none());
    }

    #[test]
    fn shifted_adds_offset() {
        let d = Shifted::new(Constant(1.0), 2.5);
        let mut rng = Rng::seed_from(0);
        assert_eq!(d.sample(&mut rng), 3.5);
        assert_eq!(d.mean(), Some(3.5));
    }

    #[test]
    fn discrete_respects_weights() {
        let d = Discrete::new(&[(0.0, 1.0), (1.0, 3.0)]).unwrap();
        let s = stats_of(&d, 13, 100_000);
        assert!((s.mean() - 0.75).abs() < 0.01, "mean {}", s.mean());
        assert!((d.mean().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn discrete_single_point() {
        let d = Discrete::new(&[(5.0, 2.0)]).unwrap();
        let mut rng = Rng::seed_from(14);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn discrete_rejects_bad_input() {
        assert!(Discrete::new(&[]).is_err());
        assert!(Discrete::new(&[(0.0, -1.0)]).is_err());
        assert!(Discrete::new(&[(0.0, 0.0)]).is_err());
        assert!(Discrete::new(&[(f64::NAN, 1.0)]).is_err());
    }

    #[test]
    fn dyn_distribution_works() {
        let d: DynDistribution = Box::new(Constant(9.0));
        let mut rng = Rng::seed_from(0);
        assert_eq!(d.sample(&mut rng), 9.0);
        assert_eq!(d.mean(), Some(9.0));
    }

    #[test]
    fn param_error_display() {
        let e = Uniform::new(3.0, 1.0).unwrap_err();
        assert!(e.to_string().contains("invalid distribution parameter"));
    }
}
