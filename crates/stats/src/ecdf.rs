//! Empirical cumulative distribution functions.
//!
//! The paper's *Benefit and Response Time Estimator* (§3.2) builds the
//! discretized benefit function `G_i(r)` "based on statistical analysis and
//! measurement". An [`Ecdf`] over measured response-time samples is exactly
//! that statistical object: `ecdf.eval(r)` is the estimated probability of
//! receiving the result within `r`, and `ecdf.quantile(p)` is the smallest
//! response time that achieves probability `p` — the natural grid on which
//! to discretize `G_i`.

use serde::{Deserialize, Serialize};

/// An empirical CDF built from a batch of samples.
///
/// # Example
///
/// ```
/// use rto_stats::ecdf::Ecdf;
/// let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(e.eval(0.5), 0.0);
/// assert_eq!(e.eval(2.0), 0.5);
/// assert_eq!(e.eval(10.0), 1.0);
/// assert_eq!(e.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples (takes ownership and sorts).
    ///
    /// Returns `None` if `samples` is empty or contains NaN.
    pub fn new(mut samples: Vec<f64>) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|x| x.is_nan()) {
            return None;
        }
        samples.sort_by(f64::total_cmp); // NaN excluded above
        Some(Ecdf { sorted: samples })
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF has no samples (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates `F(x) = P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The empirical `p`-quantile: the smallest sample `x` with
    /// `F(x) >= p`. For `p <= 0` returns the minimum sample.
    ///
    /// # Panics
    ///
    /// Panics if `p > 1` or `p` is NaN.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(!p.is_nan() && p <= 1.0, "quantile level {p} invalid");
        if p <= 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        let k = (p.clamp(0.0, 1.0) * n as f64).ceil() as usize;
        self.sorted[k.clamp(1, n) - 1]
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// The minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// The maximum sample.
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// Returns `(x, F(x))` pairs at each distinct sample — the full step
    /// function, useful for plotting or discretizing benefit functions.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = f,
                _ => out.push((x, f)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecdf(v: &[f64]) -> Ecdf {
        Ecdf::new(v.to_vec()).unwrap()
    }

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Ecdf::new(vec![]).is_none());
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_none());
    }

    #[test]
    fn eval_step_values() {
        let e = ecdf(&[3.0, 1.0, 2.0, 4.0]); // unsorted input ok
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn eval_with_ties() {
        let e = ecdf(&[1.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.eval(1.0), 0.5);
        assert_eq!(e.eval(1.5), 0.5);
        assert_eq!(e.eval(2.0), 1.0);
    }

    #[test]
    fn quantile_inverts_eval() {
        let e = ecdf(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.2), 10.0);
        assert_eq!(e.quantile(0.21), 20.0);
        assert_eq!(e.quantile(1.0), 50.0);
        assert_eq!(e.quantile(0.0), 10.0);
        // Round trip: F(quantile(p)) >= p
        for p in [0.1, 0.35, 0.6, 0.99] {
            assert!(e.eval(e.quantile(p)) >= p);
        }
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn quantile_above_one_panics() {
        ecdf(&[1.0]).quantile(1.1);
    }

    #[test]
    fn steps_collapse_ties() {
        let e = ecdf(&[1.0, 1.0, 2.0]);
        assert_eq!(e.steps(), vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn min_max_len() {
        let e = ecdf(&[5.0, -1.0, 3.0]);
        assert_eq!(e.min(), -1.0);
        assert_eq!(e.max(), 5.0);
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
    }

    #[test]
    fn eval_is_monotone() {
        let e = ecdf(&[0.3, 0.1, 0.9, 0.5, 0.5]);
        let mut prev = -1.0;
        for i in 0..100 {
            let x = i as f64 / 100.0;
            let f = e.eval(x);
            assert!(f >= prev);
            prev = f;
        }
    }
}
