//! Deterministic pseudo-random number generation.
//!
//! The workspace needs reproducible randomness: every stochastic component
//! (server response times, release jitter, workload generation) takes an
//! explicit `u64` seed and must produce the same stream on every platform
//! and with every compiler version. We therefore implement the generator
//! ourselves instead of relying on `rand`'s unspecified `StdRng` algorithm:
//!
//! * **SplitMix64** is used to expand a single `u64` seed into the 256-bit
//!   state, and to derive independent sub-streams ([`Rng::fork`]).
//! * **xoshiro256\*\*** (Blackman & Vigna) is the main generator: fast,
//!   well-tested, and equidistributed enough for simulation purposes.
//!
//! The type also implements [`rand::RngCore`] so it can be plugged into any
//! `rand`-based API (e.g. `rand::seq::SliceRandom`).

use rand::RngCore;

/// One step of the SplitMix64 generator; used for seeding and stream
/// derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// Construct it with [`Rng::seed_from`]; derive statistically independent
/// child generators with [`Rng::fork`] (useful to give each simulated
/// component its own stream so that adding draws to one component does not
/// perturb another).
///
/// # Example
///
/// ```
/// use rto_stats::rng::Rng;
/// let mut a = Rng::seed_from(7);
/// let mut b = Rng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // reproducible
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded through SplitMix64, so similar seeds (0, 1, 2…)
    /// still yield unrelated streams.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Derives an independent child generator.
    ///
    /// The child stream is decorrelated from the parent's future output:
    /// forking draws one value from the parent and re-expands it through
    /// SplitMix64 mixed with the `stream` discriminator.
    pub fn fork(&mut self, stream: u64) -> Self {
        let base = self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        Rng::seed_from(base)
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // Take the top 53 bits: mantissa-sized, unbiased.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lo > hi` or either bound is not finite.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Returns a uniform `u64` in `[0, bound)` without modulo bias
    /// (Lemire's method).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below: bound must be positive");
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = (m & u128::from(u64::MAX)) as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: accept unless in the biased region.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `u64` in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn u64_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "u64_range: empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.u64_below(hi - lo + 1)
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.usize_below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// Returns `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.usize_below(slice.len())])
        }
    }
}

impl RngCore for Rng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        Rng::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_across_instances() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn golden_stream_is_stable() {
        // Pin the exact output so accidental algorithm changes are caught;
        // experiment reproducibility depends on this stream never changing.
        let mut rng = Rng::seed_from(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = Rng::seed_from(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(first, again);
        // Sanity: outputs are not trivially small / equal.
        assert!(first.iter().all(|&x| x != 0));
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from(9);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Rng::seed_from(10);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn u64_below_respects_bound() {
        let mut rng = Rng::seed_from(11);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..1000 {
                assert!(rng.u64_below(bound) < bound);
            }
        }
    }

    #[test]
    fn u64_below_is_roughly_uniform() {
        let mut rng = Rng::seed_from(12);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.u64_below(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).abs() < (expected as i64) / 10,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn u64_range_inclusive() {
        let mut rng = Rng::seed_from(13);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let x = rng.u64_range(5, 8);
            assert!((5..=8).contains(&x));
            saw_lo |= x == 5;
            saw_hi |= x == 8;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn u64_below_zero_panics() {
        Rng::seed_from(0).u64_below(0);
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let mut parent = Rng::seed_from(99);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        let v1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let v2: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from(21);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Rng::seed_from(3);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn fill_bytes_handles_partial_chunks() {
        let mut rng = Rng::seed_from(55);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from(5);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }
}
