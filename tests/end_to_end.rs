//! Cross-crate integration tests: the full pipeline through the facade
//! crate — estimator → benefit function → ODM → plan → simulation →
//! audits — plus consistency checks between the analysis layer and the
//! simulator.

use rto::core::analysis::{density_test, processor_demand_test, OffloadedTask};
use rto::core::deadline::SplitPolicy;
use rto::core::odm::{Decision, OdmTask, OffloadingDecisionManager};
use rto::core::prelude::*;
use rto::mckp::{BranchBoundSolver, DpSolver, HeuOeSolver};
use rto::server::gpu::{OffloadRequest, PerfectServer};
use rto::server::{Scenario, ServerProxy};
use rto::sim::prelude::*;
use rto::stats::Rng;
use rto::workloads::case_study::{case_study_system, shape_request};
use rto::workloads::random::{random_system, RandomSystemParams};

fn ms(v: u64) -> Duration {
    Duration::from_ms(v)
}

/// Measure → estimate → decide → simulate: the full §3 architecture.
#[test]
fn estimator_to_simulation_pipeline() {
    // 1. Measure the server through the proxy (the §6.1.2 campaign).
    let server = Scenario::Idle.build_server(21).expect("preset valid");
    let mut proxy = ServerProxy::new(server);
    let request = OffloadRequest::new(0).with_compute_scale(1.5);
    let report = proxy.measure(&request, 300, Instant::ZERO, ms(500));
    assert_eq!(report.total(), 300);

    // 2. Build the benefit function from the measured quantiles:
    //    probability levels 25%..100%.
    let estimator = report.to_estimator().expect("some probes completed");
    let benefit = estimator
        .benefit_function(0.0, &[0.25, 0.5, 0.75, 0.95])
        .expect("grid is valid");
    assert_eq!(benefit.local_value(), 0.0);

    // 3. Decide.
    let task = Task::builder(0, "measured-kernel")
        .local_wcet(ms(40))
        .setup_wcet(ms(4))
        .compensation_wcet(ms(40))
        .period(ms(400))
        .build()
        .expect("valid task");
    let odm = OffloadingDecisionManager::new(vec![OdmTask::new(task, benefit)]).expect("one task");
    let plan = odm.decide(&DpSolver::default()).expect("feasible");
    assert_eq!(
        plan.num_offloaded(),
        1,
        "an idle server should attract offloading"
    );

    // 4. Simulate against the same scenario and verify the realized
    //    success rate roughly matches the promised probability level.
    let level_prob = match plan.decisions()[0].decision {
        Decision::Offload { level, .. } => odm.tasks()[0].benefit().points()[level].value,
        Decision::Local => unreachable!("asserted offloaded"),
    };
    let sim_server = Scenario::Idle.build_server(22).expect("preset valid");
    let sim = Simulation::build(odm.tasks().to_vec(), plan)
        .expect("plan covers tasks")
        .with_server(Box::new(sim_server))
        .with_request_shaper(Box::new(move |t, _| {
            OffloadRequest::new(t.id().0).with_compute_scale(1.5)
        }))
        .run(SimConfig::for_seconds(60, 23))
        .expect("valid config");
    assert_eq!(sim.total_deadline_misses(), 0);
    let success = sim.per_task[0]
        .remote_success_rate()
        .expect("offloaded jobs exist");
    assert!(
        (success - level_prob).abs() < 0.25,
        "promised {level_prob:.2} vs realized {success:.2}"
    );
}

/// The plan's reported density must equal what the analysis layer
/// computes from the same decisions, and the exact test must accept it.
#[test]
fn plan_is_consistent_with_analysis() {
    let odm = OffloadingDecisionManager::new(case_study_system([2.0, 4.0, 1.0, 3.0]))
        .expect("case study valid");
    let plan = odm.decide(&DpSolver::default()).expect("feasible");

    let locals: Vec<&Task> = odm
        .tasks()
        .iter()
        .zip(plan.decisions())
        .filter(|(_, d)| !d.decision.is_offload())
        .map(|(t, _)| t.task())
        .collect();
    let offloaded: Vec<OffloadedTask<'_>> = odm
        .tasks()
        .iter()
        .zip(plan.decisions())
        .filter_map(|(t, d)| match d.decision {
            Decision::Offload {
                response_time,
                setup_wcet,
                compensation_wcet,
                ..
            } => Some(OffloadedTask {
                task: t.task(),
                response_time,
                setup_wcet: Some(setup_wcet),
                compensation_wcet: Some(compensation_wcet),
            }),
            Decision::Local => None,
        })
        .collect();

    let density =
        density_test(locals.iter().copied(), offloaded.iter().copied()).expect("valid entries");
    assert!((density.load - plan.total_density()).abs() < 1e-9);
    assert!(density.schedulable);

    let exact = processor_demand_test(
        locals.iter().copied(),
        offloaded.iter().copied(),
        SplitPolicy::Proportional,
        Duration::from_secs(20),
    )
    .expect("valid entries");
    assert!(exact.schedulable, "exact test contradicts Theorem 3");
}

/// Realized benefit can never exceed the planned benefit (success gives
/// the level value; every failure mode gives less), and with a perfect
/// fast server it reaches the plan exactly.
#[test]
fn realized_benefit_bounded_by_plan() {
    let odm = OffloadingDecisionManager::new(case_study_system([1.0, 2.0, 3.0, 4.0]))
        .expect("case study valid");
    let plan = odm.decide(&DpSolver::default()).expect("feasible");
    // Planned benefit per hyperperiod-second: scale to jobs: each
    // accountable job realizes at most its level value.
    for scenario in Scenario::ALL {
        let report = Simulation::build(odm.tasks().to_vec(), plan.clone())
            .expect("plan covers tasks")
            .with_server(Box::new(scenario.build_server(31).expect("preset")))
            .with_request_shaper(Box::new(shape_request))
            .run(SimConfig::for_seconds(10, 31))
            .expect("valid config");
        for (t, stats) in odm.tasks().iter().zip(&report.per_task) {
            let best = t
                .benefit()
                .points()
                .last()
                .expect("non-empty benefit")
                .value
                * t.weight();
            assert!(
                stats.realized_benefit <= best * stats.accountable as f64 + 1e-9,
                "task {} realized more than its maximum",
                t.task().name()
            );
        }
    }
    // Perfect instant server: every offloaded job succeeds, so realized
    // equals planned scaled by job count.
    let report = Simulation::build(odm.tasks().to_vec(), plan.clone())
        .expect("plan covers tasks")
        .with_server(Box::new(PerfectServer {
            response_time: Duration::ZERO,
        }))
        .run(SimConfig::for_seconds(10, 32))
        .expect("valid config");
    assert_eq!(report.total_compensated(), 0);
    assert_eq!(report.total_deadline_misses(), 0);
}

/// All three solvers produce feasible plans on the §6.2 systems, with
/// DP ≥ HEU-OE in planned benefit and branch-and-bound ≈ DP.
///
/// Branch-and-bound is exponential in the worst case and the full
/// 30×11 instances can defeat its LP bound, so the B&B leg runs on
/// 8-task systems (the DP and the heuristic run the paper-sized ones).
#[test]
fn solvers_agree_on_random_systems() {
    for seed in 0..5u64 {
        let tasks = random_system(&RandomSystemParams::default(), &mut Rng::seed_from(seed));
        let n = tasks.len();
        let odm = OffloadingDecisionManager::new(tasks).expect("valid tasks");
        let dp = odm.decide(&DpSolver::default()).expect("feasible");
        let heu = odm.decide(&HeuOeSolver::new()).expect("feasible");
        // The DP is exact on its rounded instance; when the heuristic's
        // plan leaves more headroom than the worst-case rounding
        // inflation (1e-4 per class), the DP must match or beat it.
        if heu.total_density() <= 1.0 - n as f64 * 1e-4 {
            assert!(dp.total_benefit() >= heu.total_benefit() - 1e-6);
        }
        for plan in [&dp, &heu] {
            assert!(plan.total_density() <= 1.0 + 1e-9);
        }

        let small_params = RandomSystemParams {
            num_tasks: 8,
            ..Default::default()
        };
        let small = random_system(&small_params, &mut Rng::seed_from(seed + 100));
        let odm = OffloadingDecisionManager::new(small).expect("valid tasks");
        let dp = odm.decide(&DpSolver::default()).expect("feasible");
        let bb = odm.decide(&BranchBoundSolver::new()).expect("feasible");
        // The exact branch-and-bound never loses to the grid-rounded DP,
        // and the rounding gap stays small.
        assert!(bb.total_benefit() >= dp.total_benefit() - 1e-6);
        assert!(bb.total_benefit() - dp.total_benefit() < 0.05 * bb.total_benefit() + 1e-6);
        assert!(bb.total_density() <= 1.0 + 1e-9);
    }
}

/// The §3 server-bound extension end to end: a reservation-backed server
/// (`BoundedServer`) lets the ODM budget only post-processing, freeing
/// capacity — and the simulator confirms every response arrives in time.
/// Trusting a bound the server does not honor, however, is dangerous:
/// the same plan against a black hole can miss deadlines.
#[test]
fn server_bound_extension_end_to_end() {
    use rto::server::gpu::BoundedServer;

    let t = Task::builder(0, "bounded")
        .local_wcet(ms(40))
        .setup_wcet(ms(10))
        .compensation_wcet(ms(100))
        .postprocess_wcet(ms(5))
        .period(ms(200))
        .build()
        .expect("valid task");
    let heavy = Task::builder(1, "heavy-local")
        .local_wcet(ms(120))
        .period(ms(200))
        .build()
        .expect("valid task");
    let g = rto::core::benefit::BenefitFunction::from_ms_points(&[(0.0, 1.0), (50.0, 10.0)])
        .expect("valid benefit");
    let g_local =
        rto::core::benefit::BenefitFunction::from_ms_points(&[(0.0, 1.0)]).expect("valid");
    let odm = OffloadingDecisionManager::new(vec![
        OdmTask::new(t, g).with_server_bound(ms(40)),
        OdmTask::new(heavy, g_local),
    ])
    .expect("valid tasks");
    let plan = odm.decide(&DpSolver::default()).expect("feasible");
    assert_eq!(
        plan.num_offloaded(),
        1,
        "the bound should make offloading affordable"
    );

    // Honest server: inner model clamped to the promised 40 ms bound.
    let inner = Scenario::Busy.build_server(51).expect("preset");
    let report = Simulation::build(odm.tasks().to_vec(), plan.clone())
        .expect("plan covers tasks")
        .with_server(Box::new(BoundedServer::new(inner, ms(40))))
        .run(SimConfig::for_seconds(10, 51))
        .expect("valid config");
    assert_eq!(report.total_deadline_misses(), 0);
    assert_eq!(
        report.total_compensated(),
        0,
        "bounded server never times out"
    );
    assert!(report.total_remote() > 0);

    // Dishonest bound: the server vanishes; the timer fires and the REAL
    // 100 ms compensation runs, which the plan never budgeted for — the
    // heavy local partner then loses capacity. This documents why the
    // extension must only be used with genuinely reserved servers.
    let outage = Simulation::build(odm.tasks().to_vec(), plan)
        .expect("plan covers tasks")
        .run(SimConfig::for_seconds(10, 52))
        .expect("valid config");
    assert!(
        outage.total_deadline_misses() > 0,
        "a violated bound must surface as misses, not silence"
    );
}

/// Schedules audited across the facade: run a busy-server case study and
/// audit the trace and the EDF property.
#[test]
fn facade_schedule_audits_clean() {
    let odm = OffloadingDecisionManager::new(case_study_system([3.0, 1.0, 4.0, 2.0]))
        .expect("case study valid");
    let plan = odm.decide(&HeuOeSolver::new()).expect("feasible");
    let report = Simulation::build(odm.tasks().to_vec(), plan)
        .expect("plan covers tasks")
        .with_server(Box::new(Scenario::Busy.build_server(17).expect("preset")))
        .with_request_shaper(Box::new(shape_request))
        .run(
            SimConfig::for_seconds(8, 17)
                .with_exec_time(ExecutionTimeModel::UniformFraction { min_fraction: 0.4 }),
        )
        .expect("valid config");
    assert_eq!(report.total_deadline_misses(), 0);
    let trace = audit_trace(&report);
    assert!(trace.is_empty(), "{trace:?}");
    let edf = audit_edf(&report);
    assert!(edf.is_empty(), "{edf:?}");
}
