#!/usr/bin/env bash
# The full local gate: formatting, lints, and the complete test suite.
#
# Mirrors .github/workflows/ci.yml so a green run here means a green CI.
# Note the `--workspace` flags: a bare `cargo test` from the repo root
# only tests the facade package, not the crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace --offline -q

echo "==> all checks passed"
