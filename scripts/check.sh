#!/usr/bin/env bash
# The full local gate: formatting, lints, and the complete test suite.
#
# Mirrors .github/workflows/ci.yml so a green run here means a green CI.
# Note the `--workspace` flags: a bare `cargo test` from the repo root
# only tests the facade package, not the crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace --offline -q

echo "==> rto-lint --workspace (domain invariants L1-L6, deny on findings)"
cargo run -p rto-lint --offline -q -- --workspace

echo "==> loom model tests (obs metrics, RUSTFLAGS=--cfg loom)"
RUSTFLAGS="--cfg loom" cargo test -p rto-obs --offline -q --test loom_metrics

# Miri needs the nightly component; skip locally when unavailable (the
# CI `miri` job always runs it).
if rustup component list --toolchain nightly 2>/dev/null | grep -q "^miri.*(installed)"; then
  echo "==> cargo +nightly miri test (core + mckp)"
  cargo +nightly miri test -p rto-core --lib
  cargo +nightly miri test -p rto-mckp --lib
else
  echo "==> skipping miri (nightly miri component not installed; CI runs it)"
fi

echo "==> all checks passed"
