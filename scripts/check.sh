#!/usr/bin/env bash
# The full local gate: formatting, lints, and the complete test suite.
#
# Mirrors .github/workflows/ci.yml so a green run here means a green CI.
# Note the `--workspace` flags: a bare `cargo test` from the repo root
# only tests the facade package, not the crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace --offline -q

echo "==> rto-lint --workspace (domain invariants L1-L6, deny on findings)"
cargo run -p rto-lint --offline -q -- --workspace

echo "==> rto-analyze (A1 reachability, A2 units, A3 waivers, A4 intervals, A5 concurrency, A6 determinism, A7 hot-path allocs, A8 termination)"
# The warning-budget ratchets live in analyze.budget.toml and are
# enforced by the rto-analyze runs below; an absent file or key would
# silently disable a ratchet, so their presence is part of the gate.
test -f analyze.budget.toml || {
  echo "analyze.budget.toml missing: the warning-budget ratchets must stay committed" >&2
  exit 1
}
for key in a4_warn_max a6_warn_max a7_warn_max a8_warn_max; do
  grep -q "^${key}" analyze.budget.toml || {
    echo "analyze.budget.toml: missing ${key} — the ratchet must stay committed" >&2
    exit 1
  }
done
rm -rf target/rto-analyze
cargo run -p rto-analyze --offline -q -- --format sarif \
  --out target/rto-analyze-cold.sarif --bench-out target/rto-analyze-cold.json
cargo run -p rto-analyze --offline -q -- --format sarif \
  --out target/rto-analyze-warm.sarif --bench-out BENCH_analyze.json

echo "==> rto-analyze warm cache: identical diagnostics + >=5x speedup"
cmp target/rto-analyze-cold.sarif target/rto-analyze-warm.sarif
python3 - <<'EOF'
import json
cold = json.load(open("target/rto-analyze-cold.json"))
warm = json.load(open("BENCH_analyze.json"))
assert warm["files_reparsed"] == 0, f"warm run reparsed {warm['files_reparsed']} files"
speedup = cold["elapsed_us"] / max(warm["elapsed_us"], 1)
print(f"    cache speedup: {speedup:.1f}x "
      f"(cold {cold['elapsed_us']} us -> warm {warm['elapsed_us']} us, "
      f"{cold['files_total']} files)")
assert speedup >= 5.0, f"warm-cache speedup {speedup:.1f}x < 5x"
EOF

echo "==> rto-analyze runtime budget (<=2x committed baseline, cold and warm)"
python3 - <<'EOF'
import json
cold = json.load(open("target/rto-analyze-cold.json"))
warm = json.load(open("BENCH_analyze.json"))
base = json.load(open("results/BENCH_analyze_baseline.json"))
for label, run, key in [("cold", cold, "cold_elapsed_us"),
                        ("warm", warm, "warm_elapsed_us")]:
    ratio = run["elapsed_us"] / max(base[key], 1)
    print(f"    {label}: {run['elapsed_us']} us "
          f"(baseline {base[key]} us, ratio {ratio:.2f}x)")
    assert ratio <= 2.0, (
        f"{label} analyzer run regressed {ratio:.2f}x > 2x vs committed "
        f"baseline; investigate before re-blessing results/BENCH_analyze_baseline.json")
EOF

echo "==> rto-exp determinism: byte-identical rows for jobs 1/2/8 + warm cache"
cargo test -p rto-bench --offline -q --release --test exp_determinism

echo "==> sweep_bench: serial vs --jobs 4, identical-rows cross-check"
cargo run --release -p rto-bench --offline -q --bin sweep_bench -- --jobs 4 --out BENCH_sweep.json
# The >=2x speedup gate only means something with real cores under it;
# single-core machines still get the identical-rows check above (the
# CI `exp` job always asserts the gate on its 4-core runners).
if [ "$(nproc 2>/dev/null || echo 1)" -ge 4 ]; then
  python3 - <<'EOF'
import json
b = json.load(open("BENCH_sweep.json"))
assert b["identical"] is True, b
print(f"    parallel speedup: {b['speedup']:.2f}x "
      f"({b['serial_ms']:.0f} ms -> {b['parallel_ms']:.0f} ms)")
assert b["speedup"] >= 2.0, f"parallel speedup {b['speedup']:.2f}x < 2x with 4 workers"
EOF
else
  echo "==> skipping speedup gate (<4 cores; CI asserts it)"
fi

echo "==> obs_bench: overhead budget (0 hot-path allocs, <=2x committed baseline)"
cargo run --release -p rto-bench --offline -q --bin obs_bench -- --out BENCH_obs.json
python3 - <<'EOF'
import json
b = json.load(open("BENCH_obs.json"))
base = json.load(open("results/BENCH_obs_baseline.json"))
assert b["hot_path_allocs"] == 0, f"hot path allocated: {b}"
ratio = b["disabled_ns_per_event"] / max(base["disabled_ns_per_event"], 1e-9)
print(f"    disabled path: {b['disabled_ns_per_event']:.1f} ns/event "
      f"(baseline {base['disabled_ns_per_event']:.1f} ns, ratio {ratio:.2f}x)")
assert ratio <= 2.0, f"disabled-path overhead regressed {ratio:.2f}x > 2x vs baseline"
EOF

echo "==> sim_bench: event-engine throughput (>=10x at 100k, <=1% hold allocs, <=2x committed baseline)"
# The binary itself fails if the calendar queue is under 10x the
# bench-local reference heap at 100k concurrent events, if steady-state
# holds allocate on more than 1% of operations, or if two identical
# engine runs diverge.
cargo run --release -p rto-bench --offline -q --bin sim_bench -- --out BENCH_sim.json
python3 - <<'EOF'
import json
b = json.load(open("BENCH_sim.json"))
base = json.load(open("results/BENCH_sim_baseline.json"))
ratio = b["calendar_ns_per_event_100000"] / max(base["calendar_ns_per_event_100000"], 1e-9)
print(f"    100k hold: {b['calendar_ns_per_event_100000']:.1f} ns/event "
      f"(baseline {base['calendar_ns_per_event_100000']:.1f} ns, ratio {ratio:.2f}x), "
      f"speedup {b['speedup_100000']:.1f}x vs reference heap")
assert ratio <= 2.0, f"calendar hold regressed {ratio:.2f}x > 2x vs committed baseline"
EOF

echo "==> loom model tests (obs metrics + exp pool, RUSTFLAGS=--cfg loom)"
RUSTFLAGS="--cfg loom" cargo test -p rto-obs --offline -q --test loom_metrics
RUSTFLAGS="--cfg loom" cargo test -p rto-exp --offline -q --test loom_pool

# Miri needs the nightly component; skip locally when unavailable (the
# CI `miri` job always runs it).
if rustup component list --toolchain nightly 2>/dev/null | grep -q "^miri.*(installed)"; then
  echo "==> cargo +nightly miri test (core + mckp)"
  cargo +nightly miri test -p rto-core --lib
  cargo +nightly miri test -p rto-mckp --lib
else
  echo "==> skipping miri (nightly miri component not installed; CI runs it)"
fi

echo "==> bench trend (fresh BENCH_*.json vs committed baselines; fails on missing/malformed records)"
python3 scripts/bench_trend

echo "==> all checks passed"
