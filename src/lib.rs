//! # rto — hard real-time computation offloading onto timing-unreliable components
//!
//! A complete Rust implementation of *"Computation Offloading by Using
//! Timing Unreliable Components in Real-Time Systems"* (Liu, Chen, Toma,
//! Kuo, Deng — DAC 2014): schedule hard real-time tasks on an embedded
//! processor while opportunistically offloading work to components (GPUs,
//! COTS accelerators, networked servers) that offer **no worst-case
//! timing guarantee**, protecting every deadline with local
//! compensations.
//!
//! This crate is a facade: it re-exports the workspace's crates under one
//! roof. See each for the details:
//!
//! * [`core`] ([`rto_core`]) — task model, benefit functions, EDF sub-job
//!   deadline splitting, Theorem-1/2/3 schedulability analysis, the
//!   Offloading Decision Manager, the compensation state machine, and the
//!   response-time estimator.
//! * [`mckp`] ([`rto_mckp`]) — multiple-choice knapsack solvers: exact
//!   pseudo-polynomial DP, HEU-OE heuristic, branch-and-bound, LP
//!   relaxation.
//! * [`obs`] ([`rto_obs`]) — structured trace events, pluggable sinks
//!   (JSONL, Chrome-trace), and a hand-rolled metrics registry with
//!   Prometheus/JSON exporters.
//! * [`stats`] ([`rto_stats`]) — deterministic RNG, distributions, ECDFs.
//! * [`server`] ([`rto_server`]) — the timing-unreliable GPU server +
//!   network substrate with the paper's busy / not-busy / idle scenarios.
//! * [`sim`] ([`rto_sim`]) — discrete-event EDF simulator with
//!   compensation timers and schedule audits.
//! * [`workloads`] ([`rto_workloads`]) — the robot-vision case study
//!   (Table 1), imaging/vision kernels, and the §6.2 random generator.
//!
//! ## End-to-end example
//!
//! ```
//! use rto::core::prelude::*;
//! use rto::sim::prelude::*;
//! use rto::server::Scenario;
//!
//! // A vision task: 278 ms locally, or 5 ms setup + compensation when
//! // offloaded; period 1 s. Offloading within 150 ms quadruples quality.
//! let task = Task::builder(0, "recognition")
//!     .local_wcet(Duration::from_ms(278))
//!     .setup_wcet(Duration::from_ms(5))
//!     .period(Duration::from_secs(1))
//!     .build()?;
//! let benefit = BenefitFunction::from_ms_points(&[(0.0, 10.0), (150.0, 40.0)])?;
//!
//! // Decide (exact DP) and simulate 5 s against a busy GPU server.
//! let odm = OffloadingDecisionManager::new(vec![OdmTask::new(task, benefit)])?;
//! let plan = odm.decide(&rto::mckp::DpSolver::default())?;
//! let report = Simulation::build(odm.tasks().to_vec(), plan)?
//!     .with_server(Box::new(Scenario::Busy.build_server(1)?))
//!     .run(SimConfig::for_seconds(5, 1))?;
//!
//! // The guarantee: deadlines hold no matter what the server did.
//! assert_eq!(report.total_deadline_misses(), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rto_core as core;
pub use rto_mckp as mckp;
pub use rto_obs as obs;
pub use rto_server as server;
pub use rto_sim as sim;
pub use rto_stats as stats;
pub use rto_workloads as workloads;
